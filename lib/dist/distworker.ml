(* The worker half of the distributed shard tier: a [mechaverify
   shard-worker] process (or an in-process domain in tests) that owns a
   subset of shards.  It holds the heavy, O(edges) data — join expansion
   buffers, forward and predecessor CSR segments under its own memory
   budget — while the coordinator ({!Distshard}) keeps the discovery-order
   interning and every verdict-bearing decision.  All state is per-session,
   so one worker serves any number of concurrent coordinators. *)

module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Json = Mechaml_obs.Json
module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Shard = Mechaml_ts.Shard
module Http = Mechaml_wire.Http
module Wire = Mechaml_wire.Shardwire
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let append v (xs : int array) = Array.iter (fun x -> push v x) xs

  let get v i = Array.unsafe_get v.a i

  let length v = v.n

  let to_array v = Array.sub v.a 0 v.n

  let capacity_bytes v = 8 * Array.length v.a

  let reset v =
    v.a <- Array.make 16 0;
    v.n <- 0
end

exception Die
(* test chaos hook: simulate a crash mid-round (see [die_after] below) *)

(* -- per-session state ------------------------------------------------------ *)

type shard_state = {
  mem : Ivec.t;  (* member gids, ascending *)
  keys : Ivec.t;  (* packed pair key per member *)
  cnts : Ivec.t;  (* joint-move count per expanded member; length = expansion cursor *)
  edges : Ivec.t;  (* dst gids for expanded members, in merge order *)
  mutable echunks : (string * int) list;  (* spilled edge chunks, newest first *)
}

type fix_kind = Ef | Eu | Eg | Au

type fix_state = {
  kind : fix_kind;
  out : Bitvec.t;  (* global-indexed; authoritative only for owned states *)
  guard : Bitvec.t option;  (* [f] of E/A (f U g) *)
  stacks : int array array;  (* per shard, local indices *)
  sps : int array;
  cnt : int array array;  (* per shard: EG successor counts / AU bad counts *)
}

type sess = {
  sid : string;
  left : Automaton.t;
  right : Automaton.t;
  nr : int;
  shards : int;
  mgr : Segment.t;
  owned : bool array;
  joins :
    ((Automaton.state * Automaton.state) -> (Automaton.trans -> Automaton.trans -> unit) -> int)
    option
    array;
  ss : shard_state array;
  fwd : Segment.slot option array;
  pred : Segment.slot option array;
  g2l : (int, int) Hashtbl.t array;  (* gid -> local, per owned shard *)
  budget : int option;
  mutable owner_g : int array;  (* global owner map, from the scatter phase *)
  mutable local_g : int array;
  mutable fix : fix_state option;
  mutable rounds : int;
  mutable uniq : int;  (* uniquifies segment names across adopt cycles *)
  die_after : int option;
}

let fresh_shard_state () =
  {
    mem = Ivec.create ();
    keys = Ivec.create ();
    cnts = Ivec.create ();
    edges = Ivec.create ();
    echunks = [];
  }

let join s k =
  match s.joins.(k) with
  | Some j -> j
  | None ->
    let j = Compose.joint_iter s.left s.right in
    s.joins.(k) <- Some j;
    j

(* Edge buffers spill to session scratch at half the budget, exactly like
   the in-process construction. *)
let flush_edges s =
  match s.budget with
  | None -> ()
  | Some budget ->
    let total =
      Array.fold_left (fun acc st -> acc + Ivec.capacity_bytes st.edges) 0 s.ss
    in
    if total > budget / 2 then
      Array.iteri
        (fun k st ->
          if Ivec.length st.edges > 0 then begin
            let path = Segment.scratch_path s.mgr ~name:(Printf.sprintf "edges%d" k) in
            Segment.save ~path [ ("e", Segment.Ints (Ivec.to_array st.edges)) ];
            st.echunks <- (path, Ivec.length st.edges) :: st.echunks;
            Ivec.reset st.edges
          end)
        s.ss

let ints_field data name = Wire.ints data name

let field_opt data name = Wire.ints_opt data name

(* -- build phase ------------------------------------------------------------ *)

(* Apply one round's inputs for shard [k]: the edge delta for members merged
   last round, then the freshly interned members. *)
let apply_shard_inputs s k data =
  let st = s.ss.(k) in
  (match field_opt data (Printf.sprintf "e%d" k) with
  | Some e -> Ivec.append st.edges e
  | None -> ());
  (match
     (field_opt data (Printf.sprintf "mg%d" k), field_opt data (Printf.sprintf "mk%d" k))
   with
  | Some mg, Some mk ->
    if Array.length mg <> Array.length mk then raise (Wire.Wire_error "worker: ragged member batch");
    Array.iter (fun g -> Ivec.push st.mem g) mg;
    Array.iter (fun key -> Ivec.push st.keys key) mk
  | None, None -> ()
  | _ -> raise (Wire.Wire_error "worker: member gids without keys"))

(* Expand every not-yet-expanded member of shard [k]; returns the counts and
   flattened successor keys in member order (the coordinator's merge
   consumes them in exactly this order). *)
let expand_shard s k =
  let st = s.ss.(k) in
  let stop = Ivec.length st.mem in
  let start = Ivec.length st.cnts in
  if start >= stop then None
  else begin
    let out = Ivec.create () in
    let cs = Array.make (stop - start) 0 in
    let j = join s k in
    for m = start to stop - 1 do
      let key = Ivec.get st.keys m in
      let c =
        j
          (key / s.nr, key mod s.nr)
          (fun (tr : Automaton.trans) (tr' : Automaton.trans) ->
            Ivec.push out ((tr.Automaton.dst * s.nr) + tr'.Automaton.dst))
      in
      cs.(m - start) <- c;
      Ivec.push st.cnts c
    done;
    Some (cs, Ivec.to_array out)
  end

(* test/smoke hook: slow build rounds down so an external harness has a
   window to kill a worker mid-build *)
let throttle_s =
  lazy
    (match Sys.getenv_opt "MECHAVERIFY_DIST_THROTTLE_MS" with
    | Some v -> ( match int_of_string_opt v with Some ms when ms > 0 -> float_of_int ms /. 1000. | _ -> 0.)
    | None -> 0.)

let round s data =
  s.rounds <- s.rounds + 1;
  (match s.die_after with
  | Some r when s.rounds > r -> raise Die
  | _ -> ());
  (let t = Lazy.force throttle_s in
   if t > 0. then Unix.sleepf t);
  for k = 0 to s.shards - 1 do
    if s.owned.(k) then apply_shard_inputs s k data
  done;
  flush_edges s;
  let out = ref [] in
  for k = s.shards - 1 downto 0 do
    if s.owned.(k) then
      match expand_shard s k with
      | Some (cs, keys) ->
        out :=
          (Printf.sprintf "c%d" k, Segment.Ints cs)
          :: (Printf.sprintf "s%d" k, Segment.Ints keys)
          :: !out
      | None -> ()
  done;
  !out

(* Finalize the forward CSR for every owned shard: row from the recorded
   joint-move counts, dst from the spilled chunks plus the live tail. *)
let finish s data =
  for k = 0 to s.shards - 1 do
    (* skip shards already finalized: a repeated (empty) finish after an
       adopt cycle must not rebuild or double-apply anything *)
    if s.owned.(k) && s.fwd.(k) = None then begin
      apply_shard_inputs s k data;
      let st = s.ss.(k) in
      let size = Ivec.length st.mem in
      if Ivec.length st.cnts <> size then
        raise (Wire.Wire_error "worker: finish with unexpanded members");
      let row = Array.make (size + 1) 0 in
      for m = 0 to size - 1 do
        row.(m + 1) <- row.(m) + Ivec.get st.cnts m
      done;
      let dst = Array.make (max row.(size) 1) 0 in
      let cursor = ref 0 in
      List.iter
        (fun (path, len) ->
          (match Segment.load ~path with
          | Ok payload -> (
            match List.assoc_opt "e" payload with
            | Some (Segment.Ints a) -> Array.blit a 0 dst !cursor len
            | _ -> raise (Segment.Spill_error "worker edge chunk missing field"))
          | Error m -> raise (Segment.Spill_error m));
          (try Sys.remove path with Sys_error _ -> ());
          cursor := !cursor + len)
        (List.rev st.echunks);
      Array.blit st.edges.Ivec.a 0 dst !cursor (Ivec.length st.edges);
      if !cursor + Ivec.length st.edges <> row.(size) then
        raise (Wire.Wire_error "worker: edge delta total does not match joint-move counts");
      st.echunks <- [];
      Ivec.reset st.edges;
      let members = Ivec.to_array st.mem in
      let tbl = Hashtbl.create (max 16 size) in
      Array.iteri (fun m g -> Hashtbl.replace tbl g m) members;
      s.g2l.(k) <- tbl;
      s.uniq <- s.uniq + 1;
      s.fwd.(k) <-
        Some
          (Segment.add s.mgr
             ~name:(Printf.sprintf "fwd%d_%d" k s.uniq)
             [
               ("members", Segment.Ints members);
               ("row", Segment.Ints row);
               ("dst", Segment.Ints dst);
             ])
    end
  done

let fwd_view s k =
  match s.fwd.(k) with
  | None -> raise (Wire.Wire_error "worker: shard not finalized")
  | Some slot ->
    let p = Segment.get s.mgr slot in
    (ints_field p "members", ints_field p "row", ints_field p "dst")

let pred_view s k =
  match s.pred.(k) with
  | None -> raise (Wire.Wire_error "worker: shard has no predecessor segment")
  | Some slot ->
    let p = Segment.get s.mgr slot in
    (ints_field p "prow", ints_field p "psrc")

(* Scatter: for every owned source shard, route each edge to its
   destination's owning shard as a (local dst, src gid) pair — one field per
   (source shard, destination shard), so the coordinator can deliver batches
   in global source-shard order. *)
let scatter s data =
  s.owner_g <- ints_field data "owner";
  s.local_g <- ints_field data "local";
  let out = ref [] in
  for k = s.shards - 1 downto 0 do
    if s.owned.(k) then begin
      let members, row, dst = fwd_view s k in
      let buckets = Array.init s.shards (fun _ -> Ivec.create ()) in
      Array.iteri
        (fun m src ->
          for e = row.(m) to row.(m + 1) - 1 do
            let d = dst.(e) in
            let kk = s.owner_g.(d) in
            Ivec.push buckets.(kk) s.local_g.(d);
            Ivec.push buckets.(kk) src
          done)
        members;
      for kk = s.shards - 1 downto 0 do
        if Ivec.length buckets.(kk) > 0 then
          out :=
            (Printf.sprintf "p%d_%d" k kk, Segment.Ints (Ivec.to_array buckets.(kk)))
            :: !out
      done
    end
  done;
  !out

(* Build the predecessor CSR for one owned shard from the routed pairs
   (already concatenated in source-shard order by the coordinator), then
   ship the complete segment back — the coordinator's banked copy is the
   recovery generation. *)
let pred s k data =
  let members, row, dst = fwd_view s k in
  match s.pred.(k) with
  | Some slot ->
    (* already built (repeated request after a mid-phase recovery
       elsewhere): re-ship the existing segment *)
    let p = Segment.get s.mgr slot in
    [
      ("members", Segment.Ints members);
      ("row", Segment.Ints row);
      ("dst", Segment.Ints dst);
      ("prow", Segment.Ints (ints_field p "prow"));
      ("psrc", Segment.Ints (ints_field p "psrc"));
    ]
  | None ->
  let pairs = ints_field data "pairs" in
  let size = Array.length members in
  let pcnt = Array.make (max size 1) 0 in
  let i = ref 0 in
  let np = Array.length pairs in
  if np mod 2 <> 0 then raise (Wire.Wire_error "worker: ragged scatter pairs");
  while !i < np do
    pcnt.(pairs.(!i)) <- pcnt.(pairs.(!i)) + 1;
    i := !i + 2
  done;
  let prow = Array.make (size + 1) 0 in
  for m = 0 to size - 1 do
    prow.(m + 1) <- prow.(m) + pcnt.(m)
  done;
  let psrc = Array.make (max prow.(size) 1) 0 in
  let cursor = Array.copy prow in
  i := 0;
  while !i < np do
    let ld = pairs.(!i) and src = pairs.(!i + 1) in
    psrc.(cursor.(ld)) <- src;
    cursor.(ld) <- cursor.(ld) + 1;
    i := !i + 2
  done;
  s.uniq <- s.uniq + 1;
  s.pred.(k) <-
    Some
      (Segment.add s.mgr
         ~name:(Printf.sprintf "pred%d_%d" k s.uniq)
         [ ("prow", Segment.Ints prow); ("psrc", Segment.Ints psrc) ]);
  [
    ("members", Segment.Ints members);
    ("row", Segment.Ints row);
    ("dst", Segment.Ints dst);
    ("prow", Segment.Ints prow);
    ("psrc", Segment.Ints psrc);
  ]

(* -- recovery: adopt shards re-dispatched by the coordinator ---------------- *)

(* Mid-build adoption: the coordinator replays the shard's entire merged
   truth (members, per-member counts, edge history); expansion resumes at
   the first unmerged member.  Deterministic join enumeration makes the
   rebuilt state byte-identical to the lost worker's. *)
let adopt s ks expanded data =
  List.iter2
    (fun k exp_k ->
      s.owned.(k) <- true;
      let st = fresh_shard_state () in
      s.ss.(k) <- st;
      Ivec.append st.mem (ints_field data (Printf.sprintf "mg%d" k));
      Ivec.append st.keys (ints_field data (Printf.sprintf "mk%d" k));
      let deg = ints_field data (Printf.sprintf "deg%d" k) in
      if Array.length deg <> exp_k then raise (Wire.Wire_error "worker: adopt degree mismatch");
      Ivec.append st.cnts deg;
      Ivec.append st.edges (ints_field data (Printf.sprintf "e%d" k));
      s.fwd.(k) <- None;
      s.pred.(k) <- None)
    ks expanded;
  flush_edges s

(* Post-build adoption: the coordinator re-ships the banked, digest-checked
   segment generation. *)
let adopt_seg s k data =
  s.owned.(k) <- true;
  let members = ints_field data "members" in
  s.uniq <- s.uniq + 1;
  s.fwd.(k) <-
    Some
      (Segment.add s.mgr
         ~name:(Printf.sprintf "fwd%d_%d" k s.uniq)
         [
           ("members", Segment.Ints members);
           ("row", Segment.Ints (ints_field data "row"));
           ("dst", Segment.Ints (ints_field data "dst"));
         ]);
  s.pred.(k) <-
    Some
      (Segment.add s.mgr
         ~name:(Printf.sprintf "pred%d_%d" k s.uniq)
         [
           ("prow", Segment.Ints (ints_field data "prow"));
           ("psrc", Segment.Ints (ints_field data "psrc"));
         ]);
  let tbl = Hashtbl.create (max 16 (Array.length members)) in
  Array.iteri (fun m g -> Hashtbl.replace tbl g m) members;
  s.g2l.(k) <- tbl

(* -- satisfaction sweeps and fixpoints -------------------------------------- *)

let require_ctx s =
  if Array.length s.owner_g = 0 then
    raise (Wire.Wire_error "worker: sat op before owner/local context")

(* One-shot structural sweep: for every owned state, quantify the operand
   vector over its successors.  Blocking states answer [true] under [forall]
   (vacuous) and [false] under [exists], matching the in-process checker. *)
let agg s ~forall x =
  let n = Bitvec.length x in
  let out = Bitvec.create n in
  for k = 0 to s.shards - 1 do
    if s.owned.(k) then begin
      let members, row, dst = fwd_view s k in
      Array.iteri
        (fun m g ->
          let hi = row.(m + 1) in
          let e = ref row.(m) in
          if forall then begin
            let ok = ref true in
            while !ok && !e < hi do
              if not (Bitvec.unsafe_get x dst.(!e)) then ok := false;
              incr e
            done;
            if !ok then Bitvec.unsafe_set out g
          end
          else begin
            let found = ref false in
            while (not !found) && !e < hi do
              if Bitvec.unsafe_get x dst.(!e) then found := true;
              incr e
            done;
            if !found then Bitvec.unsafe_set out g
          end)
        members
    end
  done;
  out

let owned_gid s g =
  let k = s.owner_g.(g) in
  s.owned.(k)

let fix_init s kind ~seed ~guard =
  require_ctx s;
  let out = Bitvec.copy seed in
  let stacks = Array.make s.shards [||] in
  let sps = Array.make s.shards 0 in
  let cnt = Array.make s.shards [||] in
  for k = 0 to s.shards - 1 do
    if s.owned.(k) then begin
      let members, row, dst = fwd_view s k in
      let size = Array.length members in
      stacks.(k) <- Array.make (max size 1) 0;
      (match kind with
      | Ef | Eu ->
        Array.iteri
          (fun m g ->
            if Bitvec.unsafe_get out g then begin
              stacks.(k).(sps.(k)) <- m;
              sps.(k) <- sps.(k) + 1
            end)
          members
      | Eg ->
        cnt.(k) <- Array.make (max size 1) 0;
        Array.iteri
          (fun m g ->
            if Bitvec.unsafe_get out g then begin
              let c = ref 0 in
              for e = row.(m) to row.(m + 1) - 1 do
                if Bitvec.unsafe_get out dst.(e) then incr c
              done;
              cnt.(k).(m) <- !c;
              if !c = 0 && row.(m + 1) > row.(m) then begin
                stacks.(k).(sps.(k)) <- m;
                sps.(k) <- sps.(k) + 1
              end
            end)
          members
      | Au ->
        (* first pass only: bad-successor counts against the unmodified
           seed — candidates are a separate pass below, exactly like the
           in-process engine, so no edge's removal is counted twice *)
        cnt.(k) <- Array.make (max size 1) 0;
        Array.iteri
          (fun m _g ->
            let c = ref 0 in
            for e = row.(m) to row.(m + 1) - 1 do
              if not (Bitvec.unsafe_get out dst.(e)) then incr c
            done;
            cnt.(k).(m) <- !c)
          members
      )
    end
  done;
  (match kind with
  | Au ->
    let fset = match guard with Some f -> f | None -> raise (Wire.Wire_error "worker: AU without guard") in
    for k = 0 to s.shards - 1 do
      if s.owned.(k) then begin
        let members, row, _ = fwd_view s k in
        Array.iteri
          (fun m g ->
            if
              (not (Bitvec.unsafe_get out g))
              && Bitvec.unsafe_get fset g
              && row.(m + 1) > row.(m)
              && cnt.(k).(m) = 0
            then begin
              Bitvec.unsafe_set out g;
              stacks.(k).(sps.(k)) <- m;
              sps.(k) <- sps.(k) + 1
            end)
          members
      end
    done
  | Ef | Eu | Eg -> ());
  s.fix <- Some { kind; out; guard; stacks; sps; cnt }

(* Apply one shard's incoming boundary items, then drain every owned stack.
   Cross-worker work goes to per-destination-shard outboxes; within the
   worker, pushes land directly on the owning shard's stack — exactly the
   in-process worklist, cut at process boundaries.  All four fixpoints are
   confluent, so the drain order (which differs from the single-process
   schedule) cannot change the converged set. *)
let fix_round s data =
  require_ctx s;
  let f = match s.fix with Some f -> f | None -> raise (Wire.Wire_error "worker: fix_round before fix_init") in
  let outboxes = Array.init s.shards (fun _ -> Ivec.create ()) in
  let blocking_of row m = row.(m + 1) = row.(m) in
  (* incoming boundary items *)
  for k = 0 to s.shards - 1 do
    if s.owned.(k) then begin
      match field_opt data (Printf.sprintf "in%d" k) with
      | None -> ()
      | Some incoming ->
        let _, row, _ = fwd_view s k in
        Array.iter
          (fun g ->
            let m =
              match Hashtbl.find_opt s.g2l.(k) g with
              | Some m -> m
              | None -> raise (Wire.Wire_error "worker: boundary item for foreign state")
            in
            match f.kind with
            | Ef ->
              if not (Bitvec.unsafe_get f.out g) then begin
                Bitvec.unsafe_set f.out g;
                f.stacks.(k).(f.sps.(k)) <- m;
                f.sps.(k) <- f.sps.(k) + 1
              end
            | Eu ->
              let fset = Option.get f.guard in
              if (not (Bitvec.unsafe_get f.out g)) && Bitvec.unsafe_get fset g then begin
                Bitvec.unsafe_set f.out g;
                f.stacks.(k).(f.sps.(k)) <- m;
                f.sps.(k) <- f.sps.(k) + 1
              end
            | Eg ->
              (* a decrement event: one per removed-successor edge *)
              if Bitvec.unsafe_get f.out g then begin
                f.cnt.(k).(m) <- f.cnt.(k).(m) - 1;
                if f.cnt.(k).(m) = 0 then begin
                  f.stacks.(k).(f.sps.(k)) <- m;
                  f.sps.(k) <- f.sps.(k) + 1
                end
              end
            | Au ->
              let fset = Option.get f.guard in
              f.cnt.(k).(m) <- f.cnt.(k).(m) - 1;
              if
                (not (Bitvec.unsafe_get f.out g))
                && Bitvec.unsafe_get fset g
                && (not (blocking_of row m))
                && f.cnt.(k).(m) = 0
              then begin
                Bitvec.unsafe_set f.out g;
                f.stacks.(k).(f.sps.(k)) <- m;
                f.sps.(k) <- f.sps.(k) + 1
              end)
          incoming
    end
  done;
  (* drain until every owned stack is empty *)
  let progress = ref true in
  while !progress do
    progress := false;
    for k = 0 to s.shards - 1 do
      if s.owned.(k) && f.sps.(k) > 0 then begin
        progress := true;
        let prow, psrc = pred_view s k in
        let members, _, _ = fwd_view s k in
        let stack = f.stacks.(k) in
        while f.sps.(k) > 0 do
          f.sps.(k) <- f.sps.(k) - 1;
          let m = stack.(f.sps.(k)) in
          (match f.kind with
          | Ef ->
            for e = prow.(m) to prow.(m + 1) - 1 do
              let p = psrc.(e) in
              if not (Bitvec.unsafe_get f.out p) then
                if owned_gid s p then begin
                  Bitvec.unsafe_set f.out p;
                  let kp = s.owner_g.(p) in
                  f.stacks.(kp).(f.sps.(kp)) <- s.local_g.(p);
                  f.sps.(kp) <- f.sps.(kp) + 1
                end
                else begin
                  Bitvec.unsafe_set f.out p;
                  Ivec.push outboxes.(s.owner_g.(p)) p
                end
            done
          | Eu ->
            let fset = Option.get f.guard in
            for e = prow.(m) to prow.(m + 1) - 1 do
              let p = psrc.(e) in
              if (not (Bitvec.unsafe_get f.out p)) && Bitvec.unsafe_get fset p then
                if owned_gid s p then begin
                  Bitvec.unsafe_set f.out p;
                  let kp = s.owner_g.(p) in
                  f.stacks.(kp).(f.sps.(kp)) <- s.local_g.(p);
                  f.sps.(kp) <- f.sps.(kp) + 1
                end
                else begin
                  Bitvec.unsafe_set f.out p;
                  Ivec.push outboxes.(s.owner_g.(p)) p
                end
            done
          | Eg ->
            let g = members.(m) in
            if Bitvec.unsafe_get f.out g then begin
              Bitvec.unsafe_clear f.out g;
              for e = prow.(m) to prow.(m + 1) - 1 do
                let p = psrc.(e) in
                if Bitvec.unsafe_get f.out p then
                  if owned_gid s p then begin
                    let kp = s.owner_g.(p) in
                    let lp = s.local_g.(p) in
                    f.cnt.(kp).(lp) <- f.cnt.(kp).(lp) - 1;
                    if f.cnt.(kp).(lp) = 0 then begin
                      f.stacks.(kp).(f.sps.(kp)) <- lp;
                      f.sps.(kp) <- f.sps.(kp) + 1
                    end
                  end
                  else Ivec.push outboxes.(s.owner_g.(p)) p
              done
            end
          | Au ->
            let fset = Option.get f.guard in
            for e = prow.(m) to prow.(m + 1) - 1 do
              let p = psrc.(e) in
              if owned_gid s p then begin
                let kp = s.owner_g.(p) in
                let lp = s.local_g.(p) in
                f.cnt.(kp).(lp) <- f.cnt.(kp).(lp) - 1;
                let blocking =
                  let _, prow_p, _ = fwd_view s kp in
                  prow_p.(lp + 1) = prow_p.(lp)
                in
                if
                  (not (Bitvec.unsafe_get f.out p))
                  && Bitvec.unsafe_get fset p
                  && (not blocking)
                  && f.cnt.(kp).(lp) = 0
                then begin
                  Bitvec.unsafe_set f.out p;
                  f.stacks.(kp).(f.sps.(kp)) <- lp;
                  f.sps.(kp) <- f.sps.(kp) + 1
                end
              end
              else Ivec.push outboxes.(s.owner_g.(p)) p
            done)
        done
      end
    done
  done;
  let out = ref [] in
  for kk = s.shards - 1 downto 0 do
    if Ivec.length outboxes.(kk) > 0 then
      out := (Printf.sprintf "out%d" kk, Segment.Ints (Ivec.to_array outboxes.(kk))) :: !out
  done;
  !out

let fix_done s =
  match s.fix with
  | None -> raise (Wire.Wire_error "worker: fix_done before fix_init")
  | Some f ->
    s.fix <- None;
    [ ("out", Segment.Bits f.out) ]

(* -- the server loop -------------------------------------------------------- *)

type t = {
  listen_fd : Unix.file_descr;
  sessions : (string, sess) Hashtbl.t;
  ppid : int option;
  stop : bool Atomic.t;  (* set by the shutdown op, and cross-domain by [stop] *)
}

let handle_msg t (m : Wire.msg) : Wire.msg =
  let meta = m.Wire.meta and data = m.Wire.data in
  let op = Wire.jstr meta "op" in
  let ok ?(fields = []) extra = Wire.msg ~data:extra (Json.Obj (("ok", Json.Bool true) :: fields)) in
  let session () =
    let sid = Wire.jstr meta "sid" in
    match Hashtbl.find_opt t.sessions sid with
    | Some s -> s
    | None -> raise (Wire.Wire_error (Printf.sprintf "worker: unknown session %S" sid))
  in
  match op with
  | "ping" -> ok []
  | "open" ->
    let sid = Wire.jstr meta "sid" in
    let shards = Wire.jint meta "shards" in
    if shards < 1 then raise (Wire.Wire_error "worker: shards must be >= 1");
    let left =
      match Json.member "left" meta with
      | Some j -> Wire.automaton_of_json j
      | None -> raise (Wire.Wire_error "worker: open without left automaton")
    in
    let right =
      match Json.member "right" meta with
      | Some j -> Wire.automaton_of_json j
      | None -> raise (Wire.Wire_error "worker: open without right automaton")
    in
    let budget = Wire.jint_opt meta "budget" in
    let owned = Array.make shards false in
    List.iter
      (fun k ->
        if k < 0 || k >= shards then raise (Wire.Wire_error "worker: owned shard out of range");
        owned.(k) <- true)
      (Wire.jints meta "owned");
    (match Hashtbl.find_opt t.sessions sid with
    | Some old -> Segment.close old.mgr
    | None -> ());
    let s =
      {
        sid;
        left;
        right;
        nr = Automaton.num_states right;
        shards;
        mgr = Segment.create ?budget ~name:(Printf.sprintf "distw-%d" (Unix.getpid ())) ();
        owned;
        joins = Array.make shards None;
        ss = Array.init shards (fun _ -> fresh_shard_state ());
        fwd = Array.make shards None;
        pred = Array.make shards None;
        g2l = Array.init shards (fun _ -> Hashtbl.create 16);
        budget;
        owner_g = [||];
        local_g = [||];
        fix = None;
        rounds = 0;
        uniq = 0;
        die_after = Wire.jint_opt meta "die_after_rounds";
      }
    in
    Hashtbl.replace t.sessions sid s;
    ok []
  | "round" -> ok (round (session ()) data)
  | "finish" ->
    finish (session ()) data;
    ok []
  | "scatter" -> ok (scatter (session ()) data)
  | "pred" ->
    let s = session () in
    ok (pred s (Wire.jint meta "shard") data)
  | "adopt" ->
    let s = session () in
    adopt s (Wire.jints meta "shards") (Wire.jints meta "expanded") data;
    ok []
  | "ctx" ->
    let s = session () in
    s.owner_g <- ints_field data "owner";
    s.local_g <- ints_field data "local";
    ok []
  | "adopt_seg" ->
    let s = session () in
    adopt_seg s (Wire.jint meta "shard") data;
    ok []
  | "agg" ->
    let s = session () in
    let forall =
      match Wire.jstr meta "kind" with
      | "forall" -> true
      | "exists" -> false
      | k -> raise (Wire.Wire_error ("worker: unknown agg kind " ^ k))
    in
    ok [ ("out", Segment.Bits (agg s ~forall (Wire.bits data "x"))) ]
  | "fix_init" ->
    let s = session () in
    let kind =
      match Wire.jstr meta "kind" with
      | "ef" -> Ef
      | "eu" -> Eu
      | "eg" -> Eg
      | "au" -> Au
      | k -> raise (Wire.Wire_error ("worker: unknown fixpoint kind " ^ k))
    in
    let seed = Wire.bits data "seed" in
    let guard = match List.assoc_opt "guard" data with Some (Segment.Bits b) -> Some b | _ -> None in
    fix_init s kind ~seed ~guard;
    ok []
  | "fix_round" -> ok (fix_round (session ()) data)
  | "fix_done" -> ok (fix_done (session ()))
  | "close" ->
    let sid = Wire.jstr meta "sid" in
    (match Hashtbl.find_opt t.sessions sid with
    | Some s ->
      Segment.close s.mgr;
      Hashtbl.remove t.sessions sid
    | None -> ());
    ok []
  | "shutdown" ->
    Atomic.set t.stop true;
    ok []
  | op -> raise (Wire.Wire_error (Printf.sprintf "worker: unknown op %S" op))

let handle_conn t fd =
  let conn = Http.conn ~read_timeout_s:60. ~write_timeout_s:60. fd in
  Fun.protect
    ~finally:(fun () -> Http.close conn)
    (fun () ->
      match Http.read_request ~max_body:max_int conn with
      | exception (Http.Closed | Http.Bad _ | Http.Timeout _) -> ()
      | req -> (
        match handle_msg t (Wire.decode req.Http.body) with
        | reply -> Http.respond conn ~status:200 (Wire.encode reply)
        | exception Die -> raise Die
        | exception Wire.Wire_error m -> Http.respond conn ~status:400 m
        | exception Segment.Spill_error m -> Http.respond conn ~status:400 ("spill: " ^ m)))

(* Accept loop: [select] with a one-second tick so a forked worker notices
   its coordinator's death (reparenting) and exits instead of leaking. *)
let serve t =
  (try
     while not (Atomic.get t.stop) do
       (match t.ppid with
       | Some p when Unix.getppid () <> p -> Atomic.set t.stop true
       | _ -> ());
       if not (Atomic.get t.stop) then
         match Unix.select [ t.listen_fd ] [] [] 1.0 with
         | [], _, _ -> ()
         | _ ->
           let fd, _ = Unix.accept t.listen_fd in
           handle_conn t fd
     done
   with
  | Die -> ()
  | Unix.Unix_error (Unix.EBADF, _, _) -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Hashtbl.iter (fun _ s -> Segment.close s.mgr) t.sessions;
  Hashtbl.reset t.sessions

let create ?ppid listen_fd =
  { listen_fd; sessions = Hashtbl.create 4; ppid; stop = Atomic.make false }

(* -- in-process worker (tests, and the daemon-neutrality suites) ------------ *)

type handle = { w : t; addr : Wire.addr; domain : unit Domain.t }

let start addr =
  let fd = Wire.listen addr in
  let w = create fd in
  let domain = Domain.spawn (fun () -> serve w) in
  { w; addr; domain }

let addr h = h.addr

let stop h =
  Atomic.set h.w.stop true;
  (* wake the accept loop *)
  (try
     let fd = Wire.connect h.addr in
     Unix.close fd
   with _ -> ());
  Domain.join h.domain;
  match h.addr with
  | Wire.Unix_sock p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Wire.Tcp _ -> ()
