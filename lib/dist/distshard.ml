(* The coordinator half of the distributed shard tier.

   [explore] drives the same level-synchronized BFS as {!Mechaml_ts.Shard}
   — but expansion happens in worker {e processes}, each owning a subset of
   shards, reached over {!Mechaml_wire.Shardwire}.  The coordinator keeps
   everything verdict-bearing: the per-shard interning tables, the serial
   discovery-order merge (so state numbering, labels, degrees and adjacency
   order are byte-identical to {!Compose.parallel} and {!Shard} for any
   worker count), and a banked copy of every shipped edge generation so a
   crashed or stalled worker can be replaced mid-build.  The heavy O(edges)
   data lives on the workers; the coordinator's own bank goes through a
   {!Segment} manager, so its resident memory is bounded by the budget. *)

module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Json = Mechaml_obs.Json
module Metrics = Mechaml_obs.Metrics
module Universe = Mechaml_ts.Universe
module Automaton = Mechaml_ts.Automaton
module Shard = Mechaml_ts.Shard
module Http = Mechaml_wire.Http
module Wire = Mechaml_wire.Shardwire

let m_rounds =
  Metrics.counter "mc_dist_rounds_total"
    ~help:"Coordinator round trips to the distributed shard-worker fleet."

let m_tx =
  Metrics.counter "mc_dist_bytes_tx_total"
    ~help:"Bytes shipped from the coordinator to shard workers."

let m_rx =
  Metrics.counter "mc_dist_bytes_rx_total"
    ~help:"Bytes received by the coordinator from shard workers."

let m_restarts =
  Metrics.counter "mc_dist_worker_restarts_total"
    ~help:"Shard workers declared dead (crashed or past the round deadline) and replaced."

let total_rounds () = Metrics.counter_value m_rounds

let total_bytes_tx () = Metrics.counter_value m_tx

let total_bytes_rx () = Metrics.counter_value m_rx

let total_restarts () = Metrics.counter_value m_restarts

exception Dist_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Dist_error m)) fmt

module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = Array.unsafe_get v.a i

  let length v = v.n

  let to_array v = Array.sub v.a 0 v.n

  let clear v = v.n <- 0
end

type worker = {
  mutable addr : Wire.addr;
  mutable pid : int option;  (* Fork mode only *)
  mutable alive : bool;
}

type t = {
  config : Shard.config;
  deadline : float;
  sid : string;
  fork : bool;
  left_json : Json.t;
  right_json : Json.t;
  mgr : Segment.t;
  crew : Shard.Crew.t;
  workers : worker array;
  place : int array;  (* shard -> worker index *)
  n : int;
  transitions : int;
  initial : int list;
  owner : int array;
  local : int array;
  labels : Bitset.t array;
  props : Universe.t;
  blocking : Bitvec.t;
  sizes : int array;
  memv : int array array;  (* per-shard member gids, ascending *)
  fwd_bank : Segment.slot array;  (* the last shipped segment generation *)
  pred_bank : Segment.slot array;
  mutable restarts : int;
  mutable closed : bool;
}

let ints payload name =
  match List.assoc_opt name payload with
  | Some (Segment.Ints a) -> a
  | _ -> raise (Segment.Spill_error ("dist segment field missing: " ^ name))

(* -- fleet ------------------------------------------------------------------ *)

let sid_counter = Atomic.make 0

let worker_bin () =
  match Sys.getenv_opt "MECHAVERIFY_BIN" with
  | Some b -> b
  | None -> Sys.executable_name

let spawn_worker mgr i =
  let sock = Segment.scratch_path mgr ~name:(Printf.sprintf "w%d" i) in
  let bin = worker_bin () in
  let pid =
    Unix.create_process bin
      [| bin; "shard-worker"; sock; "--ppid"; string_of_int (Unix.getpid ()) |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  (Wire.Unix_sock sock, pid)

(* Poll until the worker's accept loop answers a ping. *)
let await_worker ?(timeout_s = 20.) addr =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Wire.call ~deadline_s:5. addr ~path:"/v1/dist/ping" (Wire.msg (Json.Obj [ ("op", Json.Str "ping") ])) with
    | _ -> ()
    | exception _ ->
      if Unix.gettimeofday () > deadline then
        fail "dist: worker at %s did not come up within %.0fs" (Wire.addr_to_string addr) timeout_s
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_worker w =
  (match w.pid with
  | Some pid ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap pid
  | None -> ());
  w.alive <- false

(* A dead worker either respawns in place (Fork) or hands its shards to the
   first surviving peer (Connect — pre-started workers are infrastructure
   the coordinator cannot restart). *)
let replace t w =
  t.restarts <- t.restarts + 1;
  Metrics.incr m_restarts;
  let ww = t.workers.(w) in
  if t.fork then begin
    kill_worker ww;
    let addr, pid = spawn_worker t.mgr w in
    ww.addr <- addr;
    ww.pid <- Some pid;
    await_worker addr;
    ww.alive <- true;
    w
  end
  else begin
    ww.alive <- false;
    let surv = ref (-1) in
    Array.iteri (fun i x -> if !surv < 0 && x.alive then surv := i) t.workers;
    if !surv < 0 then fail "dist: every connected worker is gone";
    Array.iteri (fun k wk -> if wk = w then t.place.(k) <- !surv) t.place;
    !surv
  end

(* -- parallel dispatch ------------------------------------------------------

   The main domain builds every request payload (it alone touches the
   segment manager); the crew overlaps only the wire round trips; the main
   domain consumes the replies.  Per-worker slots keep the crew race-free. *)

let dispatch t (reqs : (string * Wire.msg) list array) :
    (Wire.msg list, exn) result array =
  let nw = Array.length t.workers in
  let res = Array.make nw (Ok []) in
  let txa = Array.make nw 0 and rxa = Array.make nw 0 in
  Shard.Crew.round t.crew (fun w ->
      match reqs.(w) with
      | [] -> ()
      | rs ->
        res.(w) <-
          (try
             Ok
               (List.map
                  (fun (path, m) ->
                    let reply, tx, rx =
                      Wire.call ~deadline_s:t.deadline t.workers.(w).addr ~path m
                    in
                    txa.(w) <- txa.(w) + tx;
                    rxa.(w) <- rxa.(w) + rx;
                    reply)
                  rs)
           with e -> Error e));
  Metrics.add m_tx (Array.fold_left ( + ) 0 txa);
  Metrics.add m_rx (Array.fold_left ( + ) 0 rxa);
  Metrics.incr m_rounds;
  res

let shards_of_worker t w =
  let out = ref [] in
  for k = Array.length t.place - 1 downto 0 do
    if t.place.(k) = w then out := k :: !out
  done;
  !out

let meta t op extra = Json.Obj (("op", Json.Str op) :: ("sid", Json.Str t.sid) :: extra)

let transport_failed = function
  | Wire.Wire_error _ | Http.Closed | Http.Bad _ | Http.Timeout _ | Unix.Unix_error _ -> true
  | _ -> false

let open_msg t w ?die_after_rounds () =
  let extra =
    [
      ("shards", Wire.num t.config.Shard.shards);
      ("owned", Wire.nums (shards_of_worker t w));
      ("left", t.left_json);
      ("right", t.right_json);
    ]
    @ (match t.config.Shard.mem_budget with Some b -> [ ("budget", Wire.num b) ] | None -> [])
    @
    match die_after_rounds with
    | Some r -> [ ("die_after_rounds", Wire.num r) ]
    | None -> []
  in
  ("/v1/dist/open", Wire.msg (meta t "open" extra))

(* One call on the main domain, outside the crew (fleet setup/teardown). *)
let solo_call t w (path, m) =
  let reply, tx, rx = Wire.call ~deadline_s:t.deadline t.workers.(w).addr ~path m in
  Metrics.add m_tx tx;
  Metrics.add m_rx rx;
  reply

(* -- explore ---------------------------------------------------------------- *)

let explore ?(config = Shard.config ()) ?chaos_die_after (left : Automaton.t)
    (right : Automaton.t) =
  let dist =
    match config.Shard.distribution with
    | Some d -> d
    | None -> invalid_arg "Distshard.explore: config has no distribution"
  in
  if not (Automaton.composable left right) then
    invalid_arg
      (Printf.sprintf "Distshard.explore: %s and %s are not composable" left.Automaton.name
         right.Automaton.name);
  if not (Universe.disjoint left.Automaton.props right.Automaton.props) then
    invalid_arg "Distshard.explore: proposition universes overlap";
  let shards = config.Shard.shards in
  let props = Universe.union left.Automaton.props right.Automaton.props in
  let lp_size = Universe.size left.Automaton.props in
  let nr = Automaton.num_states right in
  let shard_of key = if shards = 1 then 0 else Shard.mix key mod shards in
  let mgr = Segment.create ?budget:config.Shard.mem_budget ?dir:config.Shard.spill_dir ~name:"dist" () in
  let nw =
    match dist.Shard.dist_mode with
    | Shard.Fork n -> min n shards
    | Shard.Connect addrs -> min (List.length addrs) shards
  in
  let workers =
    match dist.Shard.dist_mode with
    | Shard.Fork _ ->
      Array.init nw (fun i ->
          let addr, pid = spawn_worker mgr i in
          { addr; pid = Some pid; alive = true })
    | Shard.Connect addrs ->
      Array.of_list
        (List.filteri
           (fun i _ -> i < nw)
           (List.map (fun a -> { addr = Wire.addr_of_string a; pid = None; alive = true }) addrs))
  in
  let t =
    {
      config;
      deadline = dist.Shard.dist_deadline_s;
      sid = Printf.sprintf "%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add sid_counter 1);
      fork = (match dist.Shard.dist_mode with Shard.Fork _ -> true | Shard.Connect _ -> false);
      left_json = Wire.json_of_automaton left;
      right_json = Wire.json_of_automaton right;
      mgr;
      crew = Shard.Crew.create nw;
      workers;
      place = Array.init shards (fun k -> k mod nw);
      n = 0;
      transitions = 0;
      initial = [];
      owner = [||];
      local = [||];
      labels = [||];
      props;
      blocking = Bitvec.create 0;
      sizes = Array.make shards 0;
      memv = Array.make shards [||];
      fwd_bank = [||];
      pred_bank = [||];
      restarts = 0;
      closed = false;
    }
  in
  let teardown () =
    Array.iteri
      (fun w ww ->
        if t.fork then kill_worker ww
        else if ww.alive then
          try ignore (solo_call t w ("/v1/dist/close", Wire.msg (meta t "close" []))) with _ -> ())
      t.workers;
    (try Shard.Crew.stop t.crew with _ -> ());
    Segment.close mgr
  in
  try
    if t.fork then Array.iter (fun w -> await_worker w.addr) t.workers;
    (* Sessions hold no build state until the first round, so a worker dead
       at open time is repaired wholesale: replace it, then re-open every
       survivor with the re-placed shard sets (the worker's open handler is
       re-entrant per session id). *)
    let open_round () =
      let failed = ref [] in
      Array.iteri
        (fun w ww ->
          if ww.alive then
            try
              ignore
                (solo_call t w
                   (open_msg t w
                      ?die_after_rounds:
                        (match chaos_die_after with
                        | Some (wi, r) when wi = w -> Some r
                        | _ -> None)
                      ()))
            with e when transport_failed e -> failed := w :: !failed)
        t.workers;
      !failed
    in
    let rec open_all attempts =
      match open_round () with
      | [] -> ()
      | failed ->
        if attempts <= 0 then fail "open: workers keep failing";
        List.iter (fun w -> ignore (replace t w)) failed;
        open_all (attempts - 1)
    in
    open_all ((2 * nw) + 2);
    (* -- coordinator truth: interning and per-shard history ------------------ *)
    let tbl = Array.init shards (fun _ -> Hashtbl.create 256) in
    let owner = Ivec.create () in
    let local = Ivec.create () in
    let labs = Ivec.create () in
    let memv = Array.init shards (fun _ -> Ivec.create ()) in
    let keyv = Array.init shards (fun _ -> Ivec.create ()) in
    let degv = Array.init shards (fun _ -> Ivec.create ()) in
    (* edge history: a live tail plus banked chunk slots, so the resident
       part stays O(chunk) while the full per-shard history remains
       re-shippable for recovery *)
    let hist_tail = Array.init shards (fun _ -> Ivec.create ()) in
    let hist_chunks = Array.make shards [] in
    let chunk_ints =
      match config.Shard.mem_budget with
      | Some b -> max 4096 (b / (16 * shards * 8))
      | None -> 1 lsl 18
    in
    let chunk_id = ref 0 in
    let bank_tail k =
      if Ivec.length hist_tail.(k) >= chunk_ints then begin
        let slot =
          Segment.add mgr
            ~name:(Printf.sprintf "eh%d_%d" k (incr chunk_id; !chunk_id))
            [ ("e", Segment.Ints (Ivec.to_array hist_tail.(k))) ]
        in
        hist_chunks.(k) <- (slot, Ivec.length hist_tail.(k)) :: hist_chunks.(k);
        Ivec.clear hist_tail.(k)
      end
    in
    let full_history k =
      let total =
        List.fold_left (fun acc (_, l) -> acc + l) (Ivec.length hist_tail.(k)) hist_chunks.(k)
      in
      let out = Array.make (max total 1) 0 in
      let cursor = ref 0 in
      List.iter
        (fun (slot, len) ->
          Array.blit (ints (Segment.get mgr slot) "e") 0 out !cursor len;
          cursor := !cursor + len)
        (List.rev hist_chunks.(k));
      Array.blit (Ivec.to_array hist_tail.(k)) 0 out !cursor (Ivec.length hist_tail.(k));
      Array.sub out 0 total
    in
    let pending_mg = Array.init shards (fun _ -> Ivec.create ()) in
    let pending_mk = Array.init shards (fun _ -> Ivec.create ()) in
    let pending_e = Array.make shards [||] in
    let intern s s' =
      let key = (s * nr) + s' in
      let k = shard_of key in
      match Hashtbl.find_opt tbl.(k) key with
      | Some id -> id
      | None ->
        let id = Ivec.length owner in
        Hashtbl.add tbl.(k) key id;
        Ivec.push owner k;
        Ivec.push local (Ivec.length memv.(k));
        Ivec.push memv.(k) id;
        Ivec.push keyv.(k) key;
        Ivec.push labs
          (Bitset.to_int
             (Bitset.union (Automaton.label left s)
                (Bitset.shift lp_size (Automaton.label right s'))));
        Ivec.push pending_mg.(k) id;
        Ivec.push pending_mk.(k) key;
        id
    in
    let initial =
      List.concat_map
        (fun q -> List.map (fun q' -> intern q q') right.Automaton.initial)
        left.Automaton.initial
    in
    (* mid-build recovery: rebuild a lost worker's shards from coordinator
       truth, then have it expand the in-flight frontier like everyone else *)
    let adopt_reqs ks =
      let fields =
        List.concat_map
          (fun k ->
            [
              (Printf.sprintf "mg%d" k, Segment.Ints (Ivec.to_array memv.(k)));
              (Printf.sprintf "mk%d" k, Segment.Ints (Ivec.to_array keyv.(k)));
              (Printf.sprintf "deg%d" k, Segment.Ints (Ivec.to_array degv.(k)));
              (Printf.sprintf "e%d" k, Segment.Ints (full_history k));
            ])
          ks
      in
      let m =
        meta t "adopt"
          [
            ("shards", Wire.nums ks);
            ("expanded", Wire.nums (List.map (fun k -> Ivec.length degv.(k)) ks));
          ]
      in
      ("/v1/dist/adopt", Wire.msg ~data:fields m)
    in
    let recover_building w =
      let target = replace t w in
      if t.fork then ignore (solo_call t target (open_msg t target ()));
      let ks = shards_of_worker t target in
      ignore (solo_call t target (adopt_reqs ks));
      target
    in
    (* Dispatch one phase to the whole fleet with recovery: on a transport
       failure (or garbage) the worker is replaced, rebuilt via [rebuild],
       and re-asked via [retry_req] — live workers' replies are kept.
       Returns (request, reply) pairs so phases can attribute replies even
       after shards were redistributed mid-phase. *)
    let max_restarts = (2 * nw) + 2 in
    let phase_with_recovery ~reqs ~rebuild ~retry_req =
      let pairs = ref [] in
      let rec settle reqs attempt =
        if attempt > max_restarts then fail "dist: giving up after %d worker restarts" attempt;
        let res = dispatch t reqs in
        let failed = ref [] in
        Array.iteri
          (fun w r ->
            match r with
            | Ok rs -> pairs := List.combine reqs.(w) rs @ !pairs
            | Error e -> if transport_failed e then failed := w :: !failed else raise e)
          res;
        match !failed with
        | [] -> ()
        | failed ->
          let retry = Array.make nw [] in
          List.iter
            (fun w ->
              let target = rebuild w in
              retry.(target) <- retry.(target) @ retry_req target)
            failed;
          settle retry (attempt + 1)
      in
      settle reqs 1;
      List.rev !pairs
    in
    (* -- level-synchronized BFS over the fleet ------------------------------- *)
    let lo = ref 0 in
    while !lo < Ivec.length owner do
      let hi = Ivec.length owner in
      let round_req w =
        let fields =
          List.concat_map
            (fun k ->
              (if Array.length pending_e.(k) > 0 then
                 [ (Printf.sprintf "e%d" k, Segment.Ints pending_e.(k)) ]
               else [])
              @
              if Ivec.length pending_mg.(k) > 0 then
                [
                  (Printf.sprintf "mg%d" k, Segment.Ints (Ivec.to_array pending_mg.(k)));
                  (Printf.sprintf "mk%d" k, Segment.Ints (Ivec.to_array pending_mk.(k)));
                ]
              else [])
            (shards_of_worker t w)
        in
        [ ("/v1/dist/round", Wire.msg ~data:fields (meta t "round" [])) ]
      in
      let reqs = Array.init nw round_req in
      let replies =
        phase_with_recovery ~reqs ~rebuild:recover_building ~retry_req:(fun _ ->
            (* the adopt already delivered members and edges — the retry is
               an empty round that just expands the frontier *)
            [ ("/v1/dist/round", Wire.msg (meta t "round" [])) ])
      in
      for k = 0 to shards - 1 do
        Ivec.clear pending_mg.(k);
        Ivec.clear pending_mk.(k);
        pending_e.(k) <- [||]
      done;
      (* gather per-shard expansion results — each shard's counts and keys
         arrive exactly once, except that a shard re-dispatched mid-round can
         answer twice with byte-identical data (deterministic expansion), so
         plain assignment is safe *)
      let resp_cnt = Array.make shards [||] in
      let resp_keys = Array.make shards [||] in
      List.iter
        (fun (_, (r : Wire.msg)) ->
          List.iter
            (fun (name, field) ->
              match field with
              | Segment.Ints a ->
                if String.length name > 1 && name.[0] = 'c' then (
                  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
                  | Some k when k >= 0 && k < shards -> resp_cnt.(k) <- a
                  | _ -> fail "dist: worker answered unknown field %S" name)
                else if String.length name > 1 && name.[0] = 's' then (
                  match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
                  | Some k when k >= 0 && k < shards -> resp_keys.(k) <- a
                  | _ -> fail "dist: worker answered unknown field %S" name)
                else fail "dist: worker answered unknown field %S" name
              | _ -> fail "dist: worker answered non-Ints field %S" name)
            r.Wire.data)
        replies;
      (* the serial discovery-order merge — identical numbering to the
         in-process construction, whatever the fleet did *)
      let delta = Array.init shards (fun _ -> Ivec.create ()) in
      let ccur = Array.make shards 0 in
      let kcur = Array.make shards 0 in
      for gid = !lo to hi - 1 do
        let k = Ivec.get owner gid in
        if ccur.(k) >= Array.length resp_cnt.(k) then
          fail "dist: shard %d answered %d expansions, expected more" k (Array.length resp_cnt.(k));
        let c = resp_cnt.(k).(ccur.(k)) in
        ccur.(k) <- ccur.(k) + 1;
        Ivec.push degv.(k) c;
        let base = kcur.(k) in
        if base + c > Array.length resp_keys.(k) then
          fail "dist: shard %d successor batch shorter than its counts" k;
        for j = 0 to c - 1 do
          let key = resp_keys.(k).(base + j) in
          Ivec.push delta.(k) (intern (key / nr) (key mod nr))
        done;
        kcur.(k) <- base + c
      done;
      for k = 0 to shards - 1 do
        if Ivec.length delta.(k) > 0 then begin
          pending_e.(k) <- Ivec.to_array delta.(k);
          Array.iter (fun x -> Ivec.push hist_tail.(k) x) pending_e.(k);
          bank_tail k
        end
      done;
      lo := hi
    done;
    (* -- finish: final deltas out, forward CSRs finalized on the workers ----- *)
    let finish_req w =
      let fields =
        List.concat_map
          (fun k ->
            if Array.length pending_e.(k) > 0 then
              [ (Printf.sprintf "e%d" k, Segment.Ints pending_e.(k)) ]
            else [])
          (shards_of_worker t w)
      in
      [ ("/v1/dist/finish", Wire.msg ~data:fields (meta t "finish" [])) ]
    in
    let rebuild_built w =
      let target = recover_building w in
      (* the adopted state already holds the final deltas (they are part of
         the banked history), so the finish retry ships none *)
      ignore (solo_call t target ("/v1/dist/finish", Wire.msg (meta t "finish" [])));
      target
    in
    ignore
      (phase_with_recovery ~reqs:(Array.init nw finish_req) ~rebuild:recover_building
         ~retry_req:(fun _ -> [ ("/v1/dist/finish", Wire.msg (meta t "finish" [])) ]));
    Array.iteri (fun k _ -> pending_e.(k) <- [||]) pending_e;
    (* coordinator-side finalization: sizes, degrees -> blocking, transitions *)
    let n = Ivec.length owner in
    let owner_a = Ivec.to_array owner in
    let local_a = Ivec.to_array local in
    let labels = Array.init n (fun i -> Bitset.of_int_unsafe (Ivec.get labs i)) in
    let sizes = Array.map Ivec.length memv in
    let blocking = Bitvec.create n in
    let transitions = ref 0 in
    for k = 0 to shards - 1 do
      for m = 0 to Ivec.length degv.(k) - 1 do
        let d = Ivec.get degv.(k) m in
        transitions := !transitions + d;
        if d = 0 then Bitvec.unsafe_set blocking (Ivec.get memv.(k) m)
      done
    done;
    (* -- scatter: predecessor pairs routed by destination shard -------------- *)
    let ctx_fields = [ ("owner", Segment.Ints owner_a); ("local", Segment.Ints local_a) ] in
    let scatter_req _ = [ ("/v1/dist/scatter", Wire.msg ~data:ctx_fields (meta t "scatter" [])) ] in
    let sc_bank = Array.make (shards * shards) None in
    let bank_id = ref 0 in
    List.iter
      (fun (_, (r : Wire.msg)) ->
        List.iter
          (fun (name, field) ->
            match (field, String.split_on_char '_' name) with
            | Segment.Ints a, [ src; dst ] when String.length src > 1 && src.[0] = 'p' -> (
              match
                ( int_of_string_opt (String.sub src 1 (String.length src - 1)),
                  int_of_string_opt dst )
              with
              | Some sk, Some dk when sk >= 0 && sk < shards && dk >= 0 && dk < shards ->
                incr bank_id;
                sc_bank.((sk * shards) + dk) <-
                  Some
                    ( Segment.add mgr
                        ~name:(Printf.sprintf "sc%d_%d_%d" sk dk !bank_id)
                        [ ("p", Segment.Ints a) ],
                      Array.length a )
              | _ -> fail "dist: bad scatter field %S" name)
            | _ -> fail "dist: bad scatter field %S" name)
          r.Wire.data)
      (phase_with_recovery ~reqs:(Array.init nw scatter_req) ~rebuild:rebuild_built
         ~retry_req:(fun target -> scatter_req target));
    (* -- pred: per-shard predecessor CSR built on its owner, whole segment
       shipped back and banked — the recovery generation ---------------------- *)
    let pred_req_for k =
      let total =
        let acc = ref 0 in
        for sk = 0 to shards - 1 do
          match sc_bank.((sk * shards) + k) with Some (_, len) -> acc := !acc + len | None -> ()
        done;
        !acc
      in
      let pairs = Array.make (max total 1) 0 in
      let cursor = ref 0 in
      for sk = 0 to shards - 1 do
        match sc_bank.((sk * shards) + k) with
        | Some (slot, len) ->
          Array.blit (ints (Segment.get mgr slot) "p") 0 pairs !cursor len;
          cursor := !cursor + len
        | None -> ()
      done;
      ( "/v1/dist/pred",
        Wire.msg
          ~data:[ ("pairs", Segment.Ints (Array.sub pairs 0 total)) ]
          (meta t "pred" [ ("shard", Wire.num k) ]) )
    in
    let pred_reqs w = List.map pred_req_for (shards_of_worker t w) in
    let fwd_bank = Array.make shards None in
    let pred_bank = Array.make shards None in
    (* each reply's shard comes from its own request's meta, so replies stay
       attributable even after mid-phase redistribution *)
    List.iter
      (fun (((_, req) : string * Wire.msg), (r : Wire.msg)) ->
        let k = Wire.jint req.Wire.meta "shard" in
        incr bank_id;
        fwd_bank.(k) <-
          Some
            (Segment.add mgr
               ~name:(Printf.sprintf "fwd%d_%d" k !bank_id)
               [
                 ("members", Segment.Ints (Wire.ints r.Wire.data "members"));
                 ("row", Segment.Ints (Wire.ints r.Wire.data "row"));
                 ("dst", Segment.Ints (Wire.ints r.Wire.data "dst"));
               ]);
        pred_bank.(k) <-
          Some
            (Segment.add mgr
               ~name:(Printf.sprintf "pred%d_%d" k !bank_id)
               [
                 ("prow", Segment.Ints (Wire.ints r.Wire.data "prow"));
                 ("psrc", Segment.Ints (Wire.ints r.Wire.data "psrc"));
               ]))
      (phase_with_recovery ~reqs:(Array.init nw pred_reqs) ~rebuild:rebuild_built
         ~retry_req:(fun target -> pred_reqs target));
    let unwrap name = function Some x -> x | None -> fail "dist: shard missing its %s segment" name in
    {
      t with
      n;
      transitions = !transitions;
      initial;
      owner = owner_a;
      local = local_a;
      labels;
      blocking;
      sizes;
      memv = Array.map Ivec.to_array memv;
      fwd_bank = Array.map (unwrap "forward") fwd_bank;
      pred_bank = Array.map (unwrap "predecessor") pred_bank;
    }
  with e ->
    teardown ();
    raise e

(* -- post-build recovery ----------------------------------------------------
   A worker lost after the build is rebuilt from the banked generation:
   fresh session (Fork), global owner/local context, then every owned shard's
   forward + predecessor segments, digest-checked on receipt. *)

let recover_built t w =
  let target = replace t w in
  if t.fork then ignore (solo_call t target (open_msg t target ()));
  let ctx =
    ( "/v1/dist/ctx",
      Wire.msg
        ~data:[ ("owner", Segment.Ints t.owner); ("local", Segment.Ints t.local) ]
        (meta t "ctx" []) )
  in
  ignore (solo_call t target ctx);
  List.iter
    (fun k ->
      let f = Segment.get t.mgr t.fwd_bank.(k) in
      let p = Segment.get t.mgr t.pred_bank.(k) in
      ignore
        (solo_call t target
           ( "/v1/dist/adopt_seg",
             Wire.msg
               ~data:
                 [
                   ("members", Segment.Ints (ints f "members"));
                   ("row", Segment.Ints (ints f "row"));
                   ("dst", Segment.Ints (ints f "dst"));
                   ("prow", Segment.Ints (ints p "prow"));
                   ("psrc", Segment.Ints (ints p "psrc"));
                 ]
               (meta t "adopt_seg" [ ("shard", Wire.num k) ]) )))
    (shards_of_worker t target);
  target

(* Run [attempt] (a whole wire operation); if it loses workers, rebuild them
   and run it again from scratch.  All callers' operations are either
   stateless sweeps or confluent fixpoints restarted from their operands, so
   a clean re-run computes the identical result. *)
let with_recovery t attempt =
  let tries = ref 0 in
  let rec go () =
    incr tries;
    if !tries > (2 * Array.length t.workers) + 2 then
      fail "dist: giving up after %d attempts" !tries;
    match attempt () with
    | Ok v -> v
    | Error failed ->
      List.iter (fun w -> ignore (recover_built t w)) (List.sort_uniq compare failed);
      go ()
  in
  go ()

(* Assemble a global result vector from per-worker replies: each state's bit
   comes from the worker owning its shard — never OR'd, so stale foreign
   bits in a worker's scratch copy (EG clears, EF dedup marks) cannot leak
   into the result. *)
let assemble t (per_worker : Bitvec.t option array) =
  let out = Bitvec.create t.n in
  for k = 0 to t.config.Shard.shards - 1 do
    match per_worker.(t.place.(k)) with
    | Some v ->
      Array.iter (fun g -> if Bitvec.unsafe_get v g then Bitvec.unsafe_set out g) t.memv.(k)
    | None -> fail "dist: shard %d's owner sent no result" k
  done;
  out

let worker_indices t =
  let nw = Array.length t.workers in
  List.filter (fun w -> shards_of_worker t w <> []) (List.init nw Fun.id)

(* One structural sweep over the fleet: exists/forall over successors. *)
let agg t ~forall (x : Bitvec.t) =
  let nw = Array.length t.workers in
  with_recovery t (fun () ->
      let kind = if forall then "forall" else "exists" in
      let reqs =
        Array.init nw (fun w ->
            if shards_of_worker t w = [] then []
            else
              [
                ( "/v1/dist/agg",
                  Wire.msg ~data:[ ("x", Segment.Bits x) ]
                    (meta t "agg" [ ("kind", Json.Str kind) ]) );
              ])
      in
      let res = dispatch t reqs in
      let failed = ref [] in
      let outs = Array.make nw None in
      Array.iteri
        (fun w r ->
          match r with
          | Ok [] -> ()
          | Ok (reply :: _) -> outs.(w) <- Some (Wire.bits reply.Wire.data "out")
          | Error e -> if transport_failed e then failed := w :: !failed else raise e)
        res;
      match !failed with [] -> Ok (assemble t outs) | f -> Error f)

type fix_kind = Ef | Eu | Eg | Au

let kind_name = function Ef -> "ef" | Eu -> "eu" | Eg -> "eg" | Au -> "au"

(* A full distributed fixpoint: init with the seed (and guard), then rounds
   of boundary exchange until no worker emits cross-shard work, then
   collect.  Any worker loss restarts the whole fixpoint from the operands —
   the fixpoints are confluent, so the re-run converges to the same set. *)
let fixpoint t kind ~(seed : Bitvec.t) ~(guard : Bitvec.t option) =
  let nw = Array.length t.workers in
  with_recovery t (fun () ->
      let exception Lost of int in
      try
        let act = worker_indices t in
        let init_data =
          ("seed", Segment.Bits seed)
          :: (match guard with Some g -> [ ("guard", Segment.Bits g) ] | None -> [])
        in
        let send_all mk =
          let reqs = Array.make nw [] in
          List.iter (fun w -> reqs.(w) <- mk w) act;
          let res = dispatch t reqs in
          let replies = Array.make nw [] in
          Array.iteri
            (fun w r ->
              match r with
              | Ok rs -> replies.(w) <- rs
              | Error e -> if transport_failed e then raise (Lost w) else raise e)
            res;
          replies
        in
        ignore
          (send_all (fun _ ->
               [
                 ( "/v1/dist/fix_init",
                   Wire.msg ~data:init_data
                     (meta t "fix_init" [ ("kind", Json.Str (kind_name kind)) ]) );
               ]));
        (* boundary exchange rounds until quiescence *)
        let inbox = ref [] in
        let quiet = ref false in
        while not !quiet do
          let routed = Array.make t.config.Shard.shards [] in
          List.iter
            (fun (k, a) -> routed.(k) <- a :: routed.(k))
            !inbox;
          let replies =
            send_all (fun w ->
                let fields =
                  List.concat_map
                    (fun k ->
                      match routed.(k) with
                      | [] -> []
                      | batches ->
                        let total = List.fold_left (fun a b -> a + Array.length b) 0 batches in
                        let buf = Array.make total 0 in
                        let cur = ref 0 in
                        List.iter
                          (fun b ->
                            Array.blit b 0 buf !cur (Array.length b);
                            cur := !cur + Array.length b)
                          (List.rev batches);
                        [ (Printf.sprintf "in%d" k, Segment.Ints buf) ])
                    (shards_of_worker t w)
                in
                [ ("/v1/dist/fix_round", Wire.msg ~data:fields (meta t "fix_round" [])) ])
          in
          inbox := [];
          Array.iter
            (fun rs ->
              List.iter
                (fun (r : Wire.msg) ->
                  List.iter
                    (fun (name, field) ->
                      match field with
                      | Segment.Ints a
                        when String.length name > 3 && String.sub name 0 3 = "out" -> (
                        match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
                        | Some k when k >= 0 && k < t.config.Shard.shards ->
                          inbox := (k, a) :: !inbox
                        | _ -> fail "dist: bad boundary field %S" name)
                      | _ -> fail "dist: bad boundary field %S" name)
                    r.Wire.data)
                rs)
            replies;
          quiet := !inbox = []
        done;
        let outs = Array.make nw None in
        let replies =
          send_all (fun _ -> [ ("/v1/dist/fix_done", Wire.msg (meta t "fix_done" [])) ])
        in
        Array.iteri
          (fun w rs ->
            match rs with
            | [] -> ()
            | reply :: _ -> outs.(w) <- Some (Wire.bits reply.Wire.data "out"))
          replies;
        Ok (assemble t outs)
      with Lost w -> Error [ w ])

(* -- accessors (mirroring Shard) -------------------------------------------- *)

let num_states t = t.n

let num_transitions t = t.transitions

let initial t = t.initial

let shards t = t.config.Shard.shards

let sizes t = t.sizes

let owner t = t.owner

let local t = t.local

let labels t = t.labels

let props t = t.props

let blocking t = t.blocking

type view = Shard.view = {
  members : int array;
  row : int array;
  dst : int array;
  prow : int array;
  psrc : int array;
}

let view t k =
  let pf = Segment.get t.mgr t.fwd_bank.(k) in
  let pp = Segment.get t.mgr t.pred_bank.(k) in
  {
    members = ints pf "members";
    row = ints pf "row";
    dst = ints pf "dst";
    prow = ints pp "prow";
    psrc = ints pp "psrc";
  }

let manager t = t.mgr

let spills t = Segment.spills t.mgr

let reloads t = Segment.reloads t.mgr

let restarts t = t.restarts

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iteri
      (fun w ww ->
        if ww.alive then (
          try
            ignore (solo_call t w ("/v1/dist/close", Wire.msg (meta t "close" [])));
            if t.fork then ignore (solo_call t w ("/v1/dist/shutdown", Wire.msg (meta t "shutdown" [])))
          with _ -> ());
        if t.fork then kill_worker ww)
      t.workers;
    (try Shard.Crew.stop t.crew with _ -> ());
    Segment.close t.mgr
  end
