(* Global CTL satisfaction over a distributed product ({!Distshard}).

   Mirrors {!Mechaml_mc.Shardsat} operator for operator, but every
   satisfaction set is one global bit vector held by the coordinator;
   successor sweeps and the four unbounded fixpoints run on the worker
   fleet through {!Distshard.agg} / {!Distshard.fixpoint}.  All the
   unbounded fixpoints are confluent, so the distributed processing order
   (and any mid-operator worker restart) converges to bit-for-bit the same
   sets as the in-process engines, for any worker count.

   Converged sets are banked in the coordinator's segment manager, sharing
   its residency budget with the banked CSR generations. *)

module Ctl = Mechaml_logic.Ctl
module Bitset = Mechaml_util.Bitset
module Bitvec = Mechaml_util.Bitvec
module Segment = Mechaml_util.Segment
module Universe = Mechaml_ts.Universe

type env = {
  d : Distshard.t;
  n : int;
  labels : Bitset.t array;
  blocking : Bitvec.t;
  memo : (Ctl.t, Segment.slot) Hashtbl.t;
  mutable next_id : int;
}

let create d =
  {
    d;
    n = Distshard.num_states d;
    labels = Distshard.labels d;
    blocking = Distshard.blocking d;
    memo = Hashtbl.create 8;
    next_id = 0;
  }

let fresh env = Bitvec.create env.n

let full env = Bitvec.create_full env.n

let store env v =
  let id = env.next_id in
  env.next_id <- id + 1;
  Segment.add (Distshard.manager env.d) ~name:(Printf.sprintf "dsat%d" id) [ ("b", Segment.Bits v) ]

let fetch env slot =
  match List.assoc_opt "b" (Segment.get (Distshard.manager env.d) slot) with
  | Some (Segment.Bits b) -> b
  | _ -> raise (Segment.Spill_error "dist sat segment field missing")

(* Successor sweeps, short-circuiting the wire when the operand is empty:
   every state [forall]-quantifies an empty set exactly when it is blocking,
   and no state [exists]-quantifies one. *)
let forall_succ env next =
  if Bitvec.is_empty next then Bitvec.copy env.blocking else Distshard.agg env.d ~forall:true next

let exists_succ env next =
  if Bitvec.is_empty next then fresh env else Distshard.agg env.d ~forall:false next

(* -- bounded operators: the same per-step dynamic program as the in-process
   engines, with the per-state formula rewritten as vector algebra --------- *)

let bounded_dp env ~hi ~step =
  let next = ref (step (hi + 1) (fresh env)) in
  for k = hi downto 0 do
    next := step k !next
  done;
  !next

let af_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        let reach = Bitvec.logandnot (forall_succ env next) env.blocking in
        if k >= lo then Bitvec.logor fset reach else reach)

let ef_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        let reach = exists_succ env next in
        if k >= lo then Bitvec.logor fset reach else reach)

let ag_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then full env
      else
        let hold = if k < lo then full env else fset in
        if k >= hi then Bitvec.copy hold
        else Bitvec.logand hold (Bitvec.logor env.blocking (forall_succ env next)))

let eg_bounded env { Ctl.lo; hi } fset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then full env
      else
        let hold = if k < lo then full env else fset in
        if k >= hi then Bitvec.copy hold
        else Bitvec.logand hold (Bitvec.logor env.blocking (exists_succ env next)))

let au_bounded env { Ctl.lo; hi } fset gset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        let cont =
          if k < hi then
            Bitvec.logand fset (Bitvec.logandnot (forall_succ env next) env.blocking)
          else fresh env
        in
        if k >= lo then Bitvec.logor gset cont else cont)

let eu_bounded env { Ctl.lo; hi } fset gset =
  bounded_dp env ~hi ~step:(fun k next ->
      if k = hi + 1 then fresh env
      else
        let cont =
          if k < hi then Bitvec.logand fset (exists_succ env next) else fresh env
        in
        if k >= lo then Bitvec.logor gset cont else cont)

let rec sat_vec env (f : Ctl.t) : Bitvec.t =
  match Hashtbl.find_opt env.memo f with
  | Some slot -> fetch env slot
  | None ->
    let v = compute env f in
    Hashtbl.replace env.memo f (store env v);
    v

and compute env (f : Ctl.t) : Bitvec.t =
  match f with
  | True -> full env
  | False -> fresh env
  | Prop p -> (
    match Universe.index_opt (Distshard.props env.d) p with
    | None -> invalid_arg (Printf.sprintf "Distsat: proposition %S not in the product" p)
    | Some i ->
      let v = fresh env in
      for g = 0 to env.n - 1 do
        if Bitset.mem i env.labels.(g) then Bitvec.unsafe_set v g
      done;
      v)
  | Deadlock -> Bitvec.copy env.blocking
  | Not g -> Bitvec.lognot (sat_vec env g)
  | And (a, b) -> Bitvec.logand (sat_vec env a) (sat_vec env b)
  | Or (a, b) -> Bitvec.logor (sat_vec env a) (sat_vec env b)
  | Implies (a, b) -> Bitvec.logimplies (sat_vec env a) (sat_vec env b)
  | Ax g -> Distshard.agg env.d ~forall:true (sat_vec env g)
  | Ex g -> Distshard.agg env.d ~forall:false (sat_vec env g)
  | Ef (None, g) -> Distshard.fixpoint env.d Distshard.Ef ~seed:(sat_vec env g) ~guard:None
  | Ef (Some b, g) -> ef_bounded env b (sat_vec env g)
  | Af (None, g) ->
    Distshard.fixpoint env.d Distshard.Au ~seed:(sat_vec env g) ~guard:(Some (full env))
  | Af (Some b, g) -> af_bounded env b (sat_vec env g)
  | Ag (None, g) ->
    (* AG f = ¬EF¬f, exactly as the in-process engines *)
    Bitvec.lognot
      (Distshard.fixpoint env.d Distshard.Ef ~seed:(sat_vec env (Ctl.Not g)) ~guard:None)
  | Ag (Some b, g) -> ag_bounded env b (sat_vec env g)
  | Eg (None, g) -> Distshard.fixpoint env.d Distshard.Eg ~seed:(sat_vec env g) ~guard:None
  | Eg (Some b, g) -> eg_bounded env b (sat_vec env g)
  | Au (None, a, b) ->
    Distshard.fixpoint env.d Distshard.Au ~seed:(sat_vec env b) ~guard:(Some (sat_vec env a))
  | Au (Some bd, a, b) -> au_bounded env bd (sat_vec env a) (sat_vec env b)
  | Eu (None, a, b) ->
    Distshard.fixpoint env.d Distshard.Eu ~seed:(sat_vec env b) ~guard:(Some (sat_vec env a))
  | Eu (Some bd, a, b) -> eu_bounded env bd (sat_vec env a) (sat_vec env b)

let holds_initially env f =
  let v = sat_vec env f in
  List.for_all (fun g -> Bitvec.get v g) (Distshard.initial env.d)

let failing_initial env f =
  let v = sat_vec env f in
  List.find_opt (fun g -> not (Bitvec.get v g)) (Distshard.initial env.d)
