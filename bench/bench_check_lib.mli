(** The testable core of [bench_check]: bench [--json] snapshot parsing and
    the speedup aggregation (the executable keeps only IO and exit codes). *)

val benchmarks :
  Mechaml_obs.Json.t -> (((string * string) * float) list, string) result
(** The [(group, name) -> ns/run] rows of a parsed bench [--json] file.
    Rows whose value is null (a NaN estimate on that run) are dropped;
    [Error] when the [benchmarks_ns_per_run] array is missing. *)

val human_ns : float -> string
(** "812 ns", "3.41 us", "36.92 ms", "1.20 s". *)

type row = { group : string; name : string; was : float; now : float; factor : float }

type group_speedup = {
  g_group : string;
  g_geomean : float;
  g_benchmarks : int;  (** speedup rows backing the mean — always > 0 *)
}

type report = {
  rows : row list;  (** benchmarks shared by both snapshots, base order *)
  groups : group_speedup list;  (** per-group geometric means, base order *)
  overall : group_speedup option;  (** [None] when no benchmark is shared *)
  skipped : (string * string) list;
      (** (group, reason) for groups contributing no speedup row: present in
          one snapshot only, or sharing no comparable benchmark with the
          other.  Reported so they are skipped loudly instead of reaching a
          zero-row geometric mean (formerly a NaN line). *)
}

val speedup :
  base:((string * string) * float) list ->
  fresh:((string * string) * float) list ->
  report
(** Pure aggregation of two snapshots' rows; never divides by zero and never
    produces NaN factors (rows with a non-positive time on either side are
    treated as incomparable). *)
