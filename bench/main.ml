(* Benchmark harness: regenerates the data behind every figure and listing of
   the paper (the walkthrough artefacts) and the quantitative series backing
   its claims, as indexed in DESIGN.md — one group per experiment id.  Each
   group prints the reproduced rows/series and times its core operation with
   Bechamel.

   Run all groups:      dune exec bench/main.exe
   Run selected groups: dune exec bench/main.exe -- fig7_proof t1_vs_lstar *)

open Bechamel
open Toolkit
module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Run = Mechaml_ts.Run
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker
module Witness = Mechaml_mc.Witness
module Chaos = Mechaml_core.Chaos
module Synthesis = Mechaml_core.Synthesis
module Incomplete = Mechaml_core.Incomplete
module Loop = Mechaml_core.Loop
module Monitor = Mechaml_legacy.Monitor
module Blackbox = Mechaml_legacy.Blackbox
module Mealy = Mechaml_learnlib.Mealy
module Lstar = Mechaml_learnlib.Lstar
module Oracle = Mechaml_learnlib.Oracle
module Wmethod = Mechaml_learnlib.Wmethod
module Amc = Mechaml_learnlib.Amc
module Railcab = Mechaml_scenarios.Railcab
module Protocol = Mechaml_scenarios.Protocol
module Families = Mechaml_scenarios.Families
module Pp = Mechaml_util.Pp
module Shard = Mechaml_ts.Shard
module Shardsat = Mechaml_mc.Shardsat
module Segment = Mechaml_util.Segment
module Distshard = Mechaml_dist.Distshard
module Distsat = Mechaml_dist.Distsat

(* -- machine-readable output --------------------------------------------- *)

(* with [--json PATH] every Bechamel estimate, scalar metric and per-group
   wall clock also lands in a BENCH_*.json file, so CI can diff runs against
   the committed bench/BENCH_baseline.json instead of eyeballing tables *)
let json_path : string option ref = ref None

let current_group = ref ""

(* (group, name, value) rows; benchmarks are ns/run, metrics are unitless *)
let json_benchmarks : (string * string * float) list ref = ref []

let json_metrics : (string * string * float) list ref = ref []

let json_groups : (string * float) list ref = ref []

let json_metric name value =
  json_metrics := (!current_group, name, value) :: !json_metrics

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number v =
  if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let write_json path =
  let triples rows =
    String.concat ",\n"
      (List.map
         (fun (group, name, value) ->
           Printf.sprintf "    {\"group\": \"%s\", \"name\": \"%s\", \"value\": %s}"
             (json_escape group) (json_escape name) (json_number value))
         (List.rev rows))
  in
  let groups =
    String.concat ",\n"
      (List.map
         (fun (group, wall) ->
           Printf.sprintf "    {\"id\": \"%s\", \"wall_s\": %s}" (json_escape group)
             (json_number wall))
         (List.rev !json_groups))
  in
  (* the obs registry collected counters/histograms across every group run
     (--json enables it); its JSON export nests verbatim — it is an object *)
  let obs = String.trim (Mechaml_obs.Metrics.to_json ()) in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"mechaml-bench 1\",\n  \"groups\": [\n%s\n  ],\n  \"benchmarks_ns_per_run\": [\n%s\n  ],\n  \"metrics\": [\n%s\n  ],\n  \"obs\": %s\n}\n"
    groups (triples !json_benchmarks) (triples !json_metrics) obs;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* -- timing helpers ------------------------------------------------------ *)

let measure_tests name tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name v acc ->
        let ns =
          match Analyze.OLS.estimates v with Some [ t ] -> t | _ -> Float.nan
        in
        (test_name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (n, ns) -> json_benchmarks := (!current_group, n, ns) :: !json_benchmarks)
    rows;
  print_endline
    (Pp.table ~header:[ "operation"; "time/run" ]
       (List.map
          (fun (n, ns) ->
            let human =
              if Float.is_nan ns then "?"
              else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ n; human ])
          rows))

let bench1 name f = measure_tests name [ Test.make ~name (Staged.stage f) ]

let header id title =
  Printf.printf "\n==[ %s ]== %s\n\n" id title

let verdict_string = function
  | Loop.Proved -> "proved"
  | Loop.Real_violation { kind = Loop.Deadlock; confirmed_by_test; _ } ->
    if confirmed_by_test then "real deadlock (tested)" else "real deadlock (fast)"
  | Loop.Real_violation { kind = Loop.Property; confirmed_by_test; _ } ->
    if confirmed_by_test then "real violation (tested)" else "real violation (fast)"
  | Loop.Exhausted _ -> "exhausted"
  | Loop.Degraded _ -> "degraded"

(* -- EXP-F3: the chaotic automaton --------------------------------------- *)

let exp_fig3 () =
  header "EXP-F3" "Chaotic automaton (Definition 8, Fig. 3): size law 2·2^(|I|+|O|)+... ";
  let rows =
    List.map
      (fun (i, o) ->
        let m =
          Chaos.chaotic_automaton ~name:"c"
            ~inputs:(List.init i (Printf.sprintf "i%d"))
            ~outputs:(List.init o (Printf.sprintf "o%d"))
        in
        [
          string_of_int i;
          string_of_int o;
          string_of_int (Automaton.num_states m);
          string_of_int (Automaton.num_transitions m);
          string_of_int (2 * (1 lsl (i + o)));
        ])
      [ (1, 1); (2, 1); (2, 2); (4, 2); (4, 4) ]
  in
  print_endline
    (Pp.table ~header:[ "|I|"; "|O|"; "states"; "transitions"; "expected 2·2^(|I|+|O|)" ] rows);
  bench1 "chaotic_automaton(4,2)" (fun () ->
      ignore
        (Chaos.chaotic_automaton ~name:"c"
           ~inputs:[ "a"; "b"; "c"; "d" ]
           ~outputs:[ "x"; "y" ]))

(* -- EXP-F4: initial synthesis and closure ------------------------------- *)

let exp_fig4 () =
  header "EXP-F4" "Initial behavior synthesis (Section 3, Fig. 4) for the RailCab rear role";
  let m0 = Synthesis.initial_model Railcab.box_correct in
  let a0 = Chaos.closure ~label_of:Railcab.label_of m0 in
  print_endline
    (Pp.table
       ~header:[ "artefact"; "states"; "transitions"; "refusals" ]
       [
         [ "M_l^0"; string_of_int (Incomplete.num_states m0);
           string_of_int (Incomplete.num_transitions m0);
           string_of_int (Incomplete.num_refusals m0) ];
         [ "chaos(M_l^0)"; string_of_int (Automaton.num_states a0);
           string_of_int (Automaton.num_transitions a0); "-" ];
       ]);
  bench1 "closure(M_l^0)" (fun () -> ignore (Chaos.closure ~label_of:Railcab.label_of m0))

(* -- EXP-F5: RTSC flattening --------------------------------------------- *)

let exp_fig5 () =
  header "EXP-F5" "Context model: frontRole RTSC flattened to the Definition 1 automaton (Fig. 5)";
  let m = Railcab.context in
  print_endline
    (Pp.table
       ~header:[ "role"; "states"; "transitions"; "propositions" ]
       [
         [ "frontRole"; string_of_int (Automaton.num_states m);
           string_of_int (Automaton.num_transitions m);
           String.concat " " (Mechaml_ts.Universe.to_list m.Automaton.props) ];
       ]);
  bench1 "flatten(frontRole)" (fun () ->
      ignore (Mechaml_muml.Role.automaton Railcab.front_role))

(* -- EXP-L1: the first counterexample ------------------------------------ *)

let exp_listing1_1 () =
  header "EXP-L1" "First model-checking counterexample on chaos(M_l^0) (Listing 1.1)";
  let m0 = Synthesis.initial_model Railcab.box_correct in
  let legacy_props = [ "rearRole.convoy"; "rearRole.noConvoy" ] in
  let a0 = Chaos.closure ~label_of:Railcab.label_of ~extra_props:legacy_props m0 in
  let product = Compose.parallel Railcab.context a0 in
  let weakened = Ctl.weaken_for_chaos ~chaos_prop:Chaos.chaos_prop Railcab.constraint_ in
  let ce strategy =
    match
      Checker.check_conjunction ~strategy product.Compose.auto [ weakened; Ctl.deadlock_free ]
    with
    | Checker.Violated { witness; _ } -> Run.length witness
    | Checker.Holds -> -1
  in
  print_endline
    (Pp.table
       ~header:[ "strategy"; "product states"; "counterexample length" ]
       [
         [ "BFS (shortest)"; string_of_int (Automaton.num_states product.Compose.auto);
           string_of_int (ce Witness.Bfs_shortest) ];
         [ "DFS (first)"; string_of_int (Automaton.num_states product.Compose.auto);
           string_of_int (ce Witness.Dfs_first) ];
       ]);
  bench1 "compose+check(iteration 0)" (fun () ->
      let product = Compose.parallel Railcab.context a0 in
      ignore
        (Checker.check_conjunction product.Compose.auto [ weakened; Ctl.deadlock_free ]))

(* -- EXP-F6: fast conflict detection ------------------------------------- *)

let exp_fig6 () =
  header "EXP-F6" "Conflicting shuttle: fast conflict detection (Fig. 6 / Listing 1.4)";
  let r = Railcab.run_conflicting () in
  print_endline
    (Pp.table
       ~header:[ "verdict"; "iterations"; "tests"; "test steps"; "states learned" ]
       [
         [ verdict_string r.Loop.verdict;
           string_of_int (List.length r.Loop.iterations);
           string_of_int r.Loop.tests_executed;
           string_of_int r.Loop.test_steps_executed;
           string_of_int r.Loop.states_learned ];
       ]);
  bench1 "loop(conflicting shuttle)" (fun () -> ignore (Railcab.run_conflicting ()))

(* -- EXP-F7: iterate to proof -------------------------------------------- *)

let exp_fig7 () =
  header "EXP-F7" "Correct shuttle: iterative synthesis to a proof (Fig. 7 / Listing 1.5)";
  let r = Railcab.run_correct () in
  let rows =
    List.map
      (fun (it : Loop.iteration) ->
        [
          string_of_int it.Loop.index;
          string_of_int it.Loop.model_states;
          string_of_int it.Loop.model_knowledge;
          string_of_int it.Loop.product_states;
          (match it.Loop.counterexample with
          | None -> "proved"
          | Some (Loop.Deadlock, _) -> Printf.sprintf "deadlock CE len %d" it.Loop.counterexample_length
          | Some (Loop.Property, _) -> Printf.sprintf "property CE len %d" it.Loop.counterexample_length);
          (match it.Loop.test with
          | None -> if it.Loop.probes > 0 then Printf.sprintf "%d probes" it.Loop.probes else "-"
          | Some t ->
            Printf.sprintf "%s,+%d facts%s"
              (if t.Loop.reproduced then "reproduced" else "diverged")
              t.Loop.knowledge_gained
              (if it.Loop.probes > 0 then Printf.sprintf ",%d probes" it.Loop.probes else ""));
        ])
      r.Loop.iterations
  in
  print_endline
    (Pp.table ~header:[ "iter"; "model states"; "facts"; "product"; "check"; "action" ] rows);
  Printf.printf "verdict: %s; learned %d/%d states; %d tests (%d steps)\n"
    (verdict_string r.Loop.verdict) r.Loop.states_learned r.Loop.legacy_state_bound
    r.Loop.tests_executed r.Loop.test_steps_executed;
  json_metric "iterations" (float_of_int (List.length r.Loop.iterations));
  json_metric "tests_executed" (float_of_int r.Loop.tests_executed);
  json_metric "test_steps" (float_of_int r.Loop.test_steps_executed);
  json_metric "states_learned" (float_of_int r.Loop.states_learned);
  bench1 "loop(correct shuttle)" (fun () -> ignore (Railcab.run_correct ()))

(* -- EXP-T1: ours vs whole-component learning ---------------------------- *)

let exp_t1 () =
  header "EXP-T1"
    "Proof without full learning: lock family, ours vs L* (perfect oracle) + W-suite cost";
  let rows =
    List.map
      (fun (n, depth) ->
        let box = Families.lock_box ~n in
        let loop =
          Loop.run ~label_of:Families.lock_label_of
            ~context:(Families.lock_context ~n ~depth) ~property:Families.lock_property
            ~legacy:box ()
        in
        let truth =
          Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n)
        in
        let lstar =
          Lstar.learn ~box ~alphabet:Families.lock_alphabet
            ~equivalence:(Lstar.Perfect truth)
            ~ce_processing:Mechaml_learnlib.Obs_table.Maler_pnueli_suffixes ()
        in
        let words, syms =
          Wmethod.suite_size ~hypothesis:lstar.Lstar.hypothesis ~extra_states:0
        in
        [
          string_of_int n;
          string_of_int depth;
          verdict_string loop.Loop.verdict;
          string_of_int loop.Loop.states_learned;
          string_of_int loop.Loop.test_steps_executed;
          string_of_int (Mealy.num_states lstar.Lstar.hypothesis);
          string_of_int lstar.Lstar.stats.Oracle.symbols;
          Printf.sprintf "%d/%d" words syms;
        ])
      [ (8, 2); (12, 3); (16, 4); (24, 4) ]
  in
  print_endline
    (Pp.table
       ~header:
         [ "n"; "depth"; "ours"; "ours:states"; "ours:steps"; "L*:states"; "L*:symbols";
           "W-suite w/s" ]
       rows);
  bench1 "loop(lock n=12 depth=3)" (fun () ->
      ignore
        (Loop.run ~label_of:Families.lock_label_of
           ~context:(Families.lock_context ~n:12 ~depth:3)
           ~property:Families.lock_property ~legacy:(Families.lock_box ~n:12) ()))

(* -- EXP-T2: context restriction ablation -------------------------------- *)

let exp_t2 () =
  header "EXP-T2" "Context restriction ablation: lock n=16, sweep the exercised depth";
  let n = 16 in
  let rows =
    List.map
      (fun depth ->
        let context = Families.lock_context ~n ~depth in
        let r =
          Loop.run ~label_of:Families.lock_label_of ~context
            ~property:Families.lock_property ~legacy:(Families.lock_box ~n) ()
        in
        let coverage =
          Mechaml_core.Coverage.analyse ~context ~state_bound:(n + 1) r.Loop.final_model
        in
        [
          string_of_int depth;
          verdict_string r.Loop.verdict;
          string_of_int (List.length r.Loop.iterations);
          string_of_int r.Loop.states_learned;
          string_of_int r.Loop.tests_executed;
          string_of_int r.Loop.test_steps_executed;
          Printf.sprintf "%.0f%%"
            (100. *. Mechaml_core.Coverage.relevant_fraction coverage);
          Printf.sprintf "%.1f%%"
            (100. *. Mechaml_core.Coverage.explored_fraction coverage);
        ])
      [ 0; 2; 4; 6; 8; 10; 12 ]
  in
  print_endline
    (Pp.table
       ~header:
         [ "depth"; "verdict"; "iterations"; "states"; "tests"; "steps"; "relevant known";
           "of component" ]
       rows)

(* -- EXP-T3: counterexample strategy ablation ---------------------------- *)

let exp_t3 () =
  header "EXP-T3"
    "Counterexample strategy ablation (paper's future work: which counterexample to derive)";
  let run name f =
    let bfs = f Witness.Bfs_shortest and dfs = f Witness.Dfs_first in
    let stats (r : Loop.result) =
      let ce_total =
        List.fold_left (fun acc (it : Loop.iteration) -> acc + it.Loop.counterexample_length) 0
          r.Loop.iterations
      in
      ( List.length r.Loop.iterations,
        r.Loop.test_steps_executed,
        ce_total,
        verdict_string r.Loop.verdict )
    in
    let bi, bs, bc, bv = stats bfs and di, ds, dc, dv = stats dfs in
    [
      [ name; "BFS"; string_of_int bi; string_of_int bs; string_of_int bc; bv ];
      [ name; "DFS"; string_of_int di; string_of_int ds; string_of_int dc; dv ];
    ]
  in
  let rows =
    run "railcab-correct" (fun strategy -> Railcab.run_correct ~strategy ())
    @ run "protocol-correct" (fun strategy -> Protocol.run_correct ~strategy ())
    @ run "lock n=12 d=3" (fun strategy ->
          Loop.run ~strategy ~label_of:Families.lock_label_of
            ~context:(Families.lock_context ~n:12 ~depth:3)
            ~property:Families.lock_property ~legacy:(Families.lock_box ~n:12) ())
  in
  print_endline
    (Pp.table
       ~header:[ "scenario"; "strategy"; "iterations"; "test steps"; "sum CE length"; "verdict" ]
       rows)

(* -- EXP-T4: model checker scalability ------------------------------------ *)

let exp_t4 () =
  header "EXP-T4" "Model checker scalability: lock compositions of growing depth";
  let instances =
    List.map
      (fun n ->
        let legacy = Families.lock_legacy ~n in
        let context = Families.lock_context ~n ~depth:(n - 1) in
        (n, context, legacy))
      [ 8; 16; 32; 64; 128 ]
  in
  let rows =
    List.map
      (fun (n, context, legacy) ->
        let p = Compose.parallel context legacy in
        let phi =
          (* a bounded response obligation exercising the bounded-operator
             machinery on top of plain deadlock freedom *)
          Ctl.And (Ctl.deadlock_free, Ctl.Af (Some (Ctl.bounds 0 (2 * n)), Ctl.True))
        in
        let holds = Checker.holds p.Compose.auto phi in
        [
          string_of_int n;
          string_of_int (Automaton.num_states p.Compose.auto);
          string_of_int (Automaton.num_transitions p.Compose.auto);
          string_of_bool holds;
        ])
      instances
  in
  print_endline
    (Pp.table ~header:[ "lock n"; "product states"; "product transitions"; "phi holds" ] rows);
  measure_tests "mc_scale"
    (List.map
       (fun (n, context, legacy) ->
         Test.make
           ~name:(Printf.sprintf "compose+check n=%d" n)
           (Staged.stage (fun () ->
                let p = Compose.parallel context legacy in
                ignore (Checker.holds p.Compose.auto Ctl.deadlock_free))))
       instances)

(* -- EXP-T5: probe effect ------------------------------------------------- *)

let exp_t5 () =
  header "EXP-T5"
    "Probe minimisation (Section 5): events recorded under minimal vs full instrumentation";
  let inputs = [ []; [ "convoyProposalRejected" ]; []; [ "startConvoy" ] ] in
  let count instrumentation =
    Monitor.event_count (Monitor.run ~box:Railcab.box_correct ~instrumentation ~inputs)
  in
  let minimal = count Monitor.Minimal and full = count Monitor.Full in
  print_endline
    (Pp.table
       ~header:[ "instrumentation"; "events for the Listing 1.5 run"; "purpose" ]
       [
         [ "minimal (deployed)"; string_of_int minimal; "messages + periods for replay" ];
         [ "full (replay only)"; string_of_int full; "adds states + timing, no probe effect" ];
       ]);
  bench1 "record+replay(listing 1.5)" (fun () ->
      ignore (Mechaml_legacy.Replay.observe_full ~box:Railcab.box_correct ~inputs))

(* -- EXP-T6: adaptive model checking -------------------------------------- *)

let exp_t6 () =
  header "EXP-T6" "Baseline: adaptive model checking (under-approx) vs the loop (over-approx)";
  let rows =
    List.concat_map
      (fun (name, box, context, alphabet, bound, label_of, property) ->
        let amc = Amc.verify ~box ~context ~alphabet ~state_bound:bound () in
        let loop = Loop.run ~label_of ~context ~property ~legacy:box () in
        [
          [
            name; "AMC";
            (match amc.Amc.verdict with
            | Amc.Holds_up_to_bound _ -> "holds(bound)"
            | Amc.Real_violation { kind = `Deadlock; _ } -> "real deadlock"
            | Amc.Real_violation { kind = `Property; _ } -> "real violation");
            string_of_int amc.Amc.stats.Oracle.output_queries;
            string_of_int amc.Amc.stats.Oracle.symbols;
            string_of_int amc.Amc.hypothesis_states;
          ];
          [
            name; "ours";
            verdict_string loop.Loop.verdict;
            string_of_int loop.Loop.tests_executed;
            string_of_int loop.Loop.test_steps_executed;
            string_of_int loop.Loop.states_learned;
          ];
        ])
      [
        ( "protocol-correct", Protocol.box_correct, Protocol.receiver,
          Lstar.alphabet_of_signals Protocol.receiver_to_sender, 5, Protocol.label_of,
          Ctl.True );
        ( "protocol-faulty", Protocol.box_fire_and_forget, Protocol.receiver,
          Lstar.alphabet_of_signals Protocol.receiver_to_sender, 4, Protocol.label_of,
          Ctl.True );
        ( "lock n=8 d=2", Families.lock_box ~n:8, Families.lock_context ~n:8 ~depth:2,
          Families.lock_alphabet, 9, Families.lock_label_of, Ctl.True );
      ]
  in
  print_endline
    (Pp.table
       ~header:[ "scenario"; "method"; "verdict"; "queries/tests"; "symbols/steps"; "states" ]
       rows)

(* -- EXP-T7: conformance testing cost -------------------------------------- *)

let exp_t7 () =
  header "EXP-T7"
    "W-method suite size: exponential in the state-count gap (Vasilevskii/Chow, Section 6)";
  let truth = Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n:8) in
  let rows =
    List.map
      (fun extra ->
        let words, syms = Wmethod.suite_size ~hypothesis:truth ~extra_states:extra in
        [ string_of_int (Mealy.num_states truth); string_of_int extra; string_of_int words;
          string_of_int syms ])
      [ 0; 1; 2; 3; 4 ]
  in
  print_endline
    (Pp.table ~header:[ "hypothesis states"; "extra states"; "suite words"; "suite symbols" ] rows);
  bench1 "wmethod_suite(lock8,+2)" (fun () ->
      ignore (Wmethod.suite ~hypothesis:truth ~extra_states:2))

(* -- EXP-T8: timed watchdog ------------------------------------------------ *)

let exp_t8 () =
  header "EXP-T8"
    "Real-time obligations: a clocked watchdog context (invariant x<=3) supervising legacy \
     controllers";
  let rows =
    List.map
      (fun (name, r) ->
        [
          name;
          verdict_string r.Loop.verdict;
          string_of_int (List.length r.Loop.iterations);
          string_of_int r.Loop.states_learned;
          string_of_int r.Loop.test_steps_executed;
        ])
      [
        ("prompt (beats every 2)", Mechaml_scenarios.Watchdog.run_prompt ());
        ("sluggish (beats every 5)", Mechaml_scenarios.Watchdog.run_sluggish ());
      ]
  in
  print_endline
    (Pp.table ~header:[ "controller"; "verdict"; "iterations"; "states"; "test steps" ] rows);
  bench1 "loop(watchdog/prompt)" (fun () -> ignore (Mechaml_scenarios.Watchdog.run_prompt ()))

(* -- EXP-T9: connector QoS -------------------------------------------------- *)

let exp_t9 () =
  header "EXP-T9"
    "Connector QoS ablation: the DistanceCoordination handshake over delayed and lossy channels";
  let module Remote = Mechaml_scenarios.Railcab_remote in
  let run name lossy property =
    let r = Remote.run ~lossy ~property () in
    [
      name;
      verdict_string r.Loop.verdict;
      string_of_int (List.length r.Loop.iterations);
      string_of_int r.Loop.states_learned;
      string_of_int r.Loop.test_steps_executed;
    ]
  in
  let hasty =
    let r =
      Loop.run ~label_of:Remote.label_of ~context:Remote.front_hasty_context
        ~property:Remote.constraint_ ~legacy:Remote.box_remote ()
    in
    [
      "reliable, hasty front (no grace state)";
      verdict_string r.Loop.verdict;
      string_of_int (List.length r.Loop.iterations);
      string_of_int r.Loop.states_learned;
      string_of_int r.Loop.test_steps_executed;
    ]
  in
  print_endline
    (Pp.table
       ~header:[ "configuration"; "verdict"; "iterations"; "states"; "test steps" ]
       [
         run "reliable, constraint" false Remote.constraint_;
         run "reliable, bounded response" false Remote.response_property;
         run "lossy, bounded response" true Remote.response_property;
         hasty;
       ]);
  bench1 "loop(remote railcab, reliable)" (fun () ->
      ignore (Remote.run ~lossy:false ~property:Remote.constraint_ ()))

(* -- EXP-T10: batched counterexamples --------------------------------------- *)

let exp_t10 () =
  header "EXP-T10"
    "Future-work: several counterexamples per model-checking round (paper, Section 7)";
  let module Remote = Mechaml_scenarios.Railcab_remote in
  let row name f =
    List.map
      (fun k ->
        let r = f k in
        [
          name;
          string_of_int k;
          verdict_string r.Loop.verdict;
          string_of_int (List.length r.Loop.iterations);
          string_of_int r.Loop.tests_executed;
          string_of_int r.Loop.test_steps_executed;
        ])
      [ 1; 2; 4 ]
  in
  let rows =
    row "remote railcab" (fun k ->
        Loop.run ~counterexamples_per_iteration:k ~label_of:Remote.label_of
          ~context:(Remote.context ~lossy:false) ~property:Remote.constraint_
          ~legacy:Remote.box_remote ())
    @ row "lock n=16 d=6" (fun k ->
          Loop.run ~counterexamples_per_iteration:k ~label_of:Families.lock_label_of
            ~context:(Families.lock_context ~n:16 ~depth:6)
            ~property:Families.lock_property ~legacy:(Families.lock_box ~n:16) ())
  in
  print_endline
    (Pp.table
       ~header:[ "scenario"; "CEs/round"; "verdict"; "MC rounds"; "tests"; "test steps" ]
       rows)

(* -- EXP-T11: on-the-fly vs materialized checking --------------------------- *)

let exp_t11 () =
  header "EXP-T11" "On-the-fly product exploration vs materializing the composition";
  let module Onthefly = Mechaml_mc.Onthefly in
  let rows =
    List.map
      (fun n ->
        let left = Families.lock_context ~n ~depth:(n - 1) in
        let right = Families.lock_legacy ~n in
        let fly = Onthefly.check_safety ~left ~right () in
        let p = Compose.parallel left right in
        [
          string_of_int n;
          string_of_int fly.Onthefly.pairs_explored;
          string_of_int (Automaton.num_states p.Compose.auto);
          (match fly.Onthefly.verdict with
          | Onthefly.Holds -> "holds"
          | Onthefly.Bad_state _ -> "bad state"
          | Onthefly.Deadlocked _ -> "deadlock");
        ])
      [ 16; 64; 256 ]
  in
  print_endline
    (Pp.table ~header:[ "lock n"; "pairs explored"; "product states"; "verdict" ] rows);
  let n = 256 in
  let left = Families.lock_context ~n ~depth:(n - 1) in
  let right = Families.lock_legacy ~n in
  measure_tests "onthefly_vs_materialized"
    [
      Test.make ~name:"on-the-fly check"
        (Staged.stage (fun () -> ignore (Onthefly.check_safety ~left ~right ())));
      Test.make ~name:"materialize + check"
        (Staged.stage (fun () ->
             let p = Compose.parallel left right in
             ignore (Checker.holds p.Compose.auto Ctl.deadlock_free)));
    ]

(* -- EXP-T12: counterexample processing in L* ------------------------------- *)

let exp_t12 () =
  header "EXP-T12"
    "Observation-table ablation: counterexample processing (Angluin / Maler-Pnueli / Rivest-Schapire)";
  let rows =
    List.concat_map
      (fun n ->
        let box = Families.lock_box ~n in
        let truth =
          Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n)
        in
        List.map
          (fun (name, processing) ->
            let r =
              Lstar.learn ~box ~alphabet:Families.lock_alphabet
                ~equivalence:(Lstar.Perfect truth) ~ce_processing:processing ()
            in
            [
              string_of_int n;
              name;
              string_of_int r.Lstar.rounds;
              string_of_int r.Lstar.stats.Oracle.output_queries;
              string_of_int r.Lstar.stats.Oracle.symbols;
              Printf.sprintf "%dx%d" r.Lstar.table_rows r.Lstar.table_columns;
            ])
          [
            ("Angluin prefixes", Mechaml_learnlib.Obs_table.Angluin_prefixes);
            ("Maler-Pnueli suffixes", Mechaml_learnlib.Obs_table.Maler_pnueli_suffixes);
            ("Rivest-Schapire", Mechaml_learnlib.Obs_table.Rivest_schapire);
          ])
      [ 8; 12; 16 ]
  in
  print_endline
    (Pp.table
       ~header:[ "n"; "CE processing"; "rounds"; "queries"; "symbols"; "table (rows x cols)" ]
       rows)

(* -- EXP-T13: campaign engine ------------------------------------------------ *)

let exp_t13 () =
  header "EXP-T13"
    "Campaign engine: the bundled scenario matrix on a worker pool, cold vs warm memo cache";
  let module Campaign = Mechaml_engine.Campaign in
  let module Cache = Mechaml_engine.Cache in
  let module Pool = Mechaml_engine.Pool in
  let module Report = Mechaml_engine.Report in
  (* worker domains only pay off with cores to run on — read the rows below
     against this number (a single-core container shows pure pool overhead) *)
  Printf.printf "recommended worker domains on this machine: %d\n\n" (Pool.recommended_jobs ());
  let specs = Campaign.bundled () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let shared = Cache.create () in
  let configs =
    [
      ("jobs=1, cold cache", fun () -> Campaign.run ~jobs:1 specs);
      ("jobs=4, cold cache", fun () -> Campaign.run ~jobs:4 specs);
      ("jobs=1, warm cache", fun () -> Campaign.run ~jobs:1 ~cache:shared specs);
      (* the first warm run above filled [shared]; this one replays from it *)
      ("jobs=4, warm cache", fun () -> Campaign.run ~jobs:4 ~cache:shared specs);
      ("jobs=1, no cache", fun () -> Campaign.run ~jobs:1 ~memo:false specs);
    ]
  in
  let reference = ref None in
  let rows =
    List.map
      (fun (name, f) ->
        let outcomes, wall = time f in
        let canonical = Report.canonical outcomes in
        let identical =
          match !reference with
          | None ->
            reference := Some canonical;
            "(reference)"
          | Some r -> string_of_bool (r = canonical)
        in
        let ch, cm, kh, km =
          List.fold_left
            (fun (ch, cm, kh, km) (o : Campaign.outcome) ->
              ( ch + o.Campaign.cache.Campaign.closure_hits,
                cm + o.Campaign.cache.Campaign.closure_misses,
                kh + o.Campaign.cache.Campaign.check_hits,
                km + o.Campaign.cache.Campaign.check_misses ))
            (0, 0, 0, 0) outcomes
        in
        let hits = ch + kh and lookups = ch + cm + kh + km in
        json_metric (name ^ ": cache hits") (float_of_int hits);
        json_metric (name ^ ": cache lookups") (float_of_int lookups);
        [
          name;
          Printf.sprintf "%.1f ms" (wall *. 1e3);
          (if lookups = 0 then "-" else Printf.sprintf "%d/%d" hits lookups);
          identical;
        ])
      configs
  in
  print_endline
    (Pp.table
       ~header:[ "configuration"; "wall clock"; "cache hits/lookups"; "verdicts identical" ]
       rows);
  (* the bundled matrix is milliseconds-sized, so domain spawn overhead wins;
     a heavier lock sweep shows the pool paying off *)
  let heavy =
    List.map
      (fun (n, depth) ->
        Campaign.job
          ~id:(Printf.sprintf "lock/n%d-d%d" n depth)
          ~family:"lock"
          ~context:(Families.lock_context ~n ~depth)
          ~property:Families.lock_property ~label_of:Families.lock_label_of (fun () ->
            Families.lock_box ~n))
      [ (32, 16); (40, 20); (48, 24); (56, 28); (64, 32); (72, 36); (80, 40); (96, 48) ]
  in
  let heavy_rows =
    List.map
      (fun jobs ->
        let outcomes, wall = time (fun () -> Campaign.run ~jobs heavy) in
        let proved =
          List.length
            (List.filter (fun (o : Campaign.outcome) -> o.Campaign.verdict = Campaign.Proved)
               outcomes)
        in
        [
          Printf.sprintf "jobs=%d" jobs;
          Printf.sprintf "%.1f ms" (wall *. 1e3);
          Printf.sprintf "%d/%d proved" proved (List.length outcomes);
        ])
      [ 1; 2; 4 ]
  in
  print_endline
    (Pp.table ~header:[ "lock sweep (8 heavy jobs)"; "wall clock"; "verdicts" ] heavy_rows);
  (* tracing overhead: the full bundled matrix untraced and with span
     recording on (every iteration, closure, check, driver query and pool
     task records a span); the acceptance budget for the slowdown is 5%.
     Interleaved best-of-3 on the ~100ms matrix keeps scheduler noise below
     the effect being measured (the tiny matrix is too short for that). *)
  let campaign () = ignore (Campaign.run ~jobs:2 specs) in
  let untraced = ref infinity and traced = ref infinity in
  for _ = 1 to 3 do
    Mechaml_obs.Trace.disable ();
    let _, off = time campaign in
    Mechaml_obs.Trace.enable ();
    Mechaml_obs.Trace.reset ();
    let _, on_ = time campaign in
    if off < !untraced then untraced := off;
    if on_ < !traced then traced := on_
  done;
  let spans = Mechaml_obs.Trace.span_count () in
  Mechaml_obs.Trace.disable ();
  Mechaml_obs.Trace.reset ();
  let overhead_pct = 100. *. (!traced -. !untraced) /. !untraced in
  json_metric "tracing overhead pct" overhead_pct;
  json_metric "tracing spans per campaign" (float_of_int spans);
  print_endline
    (Pp.table
       ~header:[ "bundled matrix, jobs=2"; "wall clock (best of 3)"; "spans recorded" ]
       [
         [ "tracing off"; Printf.sprintf "%.2f ms" (!untraced *. 1e3); "-" ];
         [ "tracing on"; Printf.sprintf "%.2f ms" (!traced *. 1e3); string_of_int spans ];
         [ "overhead"; Printf.sprintf "%+.1f%%" overhead_pct; "-" ];
       ]);
  let tiny = Campaign.bundled ~tiny:true () in
  measure_tests "campaign"
    [
      Test.make ~name:"campaign(tiny, jobs=1)"
        (Staged.stage (fun () -> ignore (Campaign.run ~jobs:1 tiny)));
      Test.make ~name:"campaign(tiny, jobs=2)"
        (Staged.stage (fun () -> ignore (Campaign.run ~jobs:2 tiny)));
    ]

(* -- EXP-T14: incremental re-verification across iterations ----------------- *)

let exp_t14 () =
  header "EXP-T14"
    "Incremental re-verification: delta closures, product patching, warm fixpoints — \
     wide-alphabet lock, incremental on vs off";
  let n = 12 and spares = (4, 3) in
  let context = Families.wide_lock_context ~n ~depth:(n - 1) ~spares in
  let property = Families.lock_property in
  let run ~incremental =
    Loop.run ~label_of:Families.lock_label_of ~context ~property
      ~legacy:(Families.wide_lock_box ~n ~spares)
      ~incremental ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Interleaved best-of-3 pairs: the reported speedup is the minimum over
     rounds of off/on measured back to back, so scheduler noise cannot
     manufacture a ratio in either direction.  A warmup pair plus a heap
     compaction before every timed run keep the rounds from inheriting GC
     debt from whatever experiment ran before this one in a full sweep —
     a single major slice landing in one round would otherwise dominate
     the minimum. *)
  ignore (run ~incremental:false);
  ignore (run ~incremental:true);
  (* Each configuration's per-round time is the faster of two runs from a
     compacted heap: one stray major-GC slice or scheduler preemption can
     inflate a single run by tens of milliseconds in a full sweep, and the
     minimum-over-rounds ratio amplifies exactly such one-offs. *)
  let timed f =
    Gc.compact ();
    let r, t1 = time f in
    Gc.compact ();
    let _, t2 = time f in
    (r, Float.min t1 t2)
  in
  let min_ratio = ref infinity in
  let last = ref None in
  for _ = 1 to 3 do
    let r_off, t_off = timed (fun () -> run ~incremental:false) in
    let r_on, t_on = timed (fun () -> run ~incremental:true) in
    last := Some (r_off, r_on, t_off, t_on);
    if t_off /. t_on < !min_ratio then min_ratio := t_off /. t_on
  done;
  let r_off, r_on, t_off, t_on = Option.get !last in
  let iters r = List.length r.Loop.iterations in
  assert (iters r_on >= 10);
  assert (iters r_off = iters r_on);
  print_endline
    (Pp.table
       ~header:[ "configuration"; "wall clock"; "iterations"; "reuse" ]
       [
         [ "incremental off"; Printf.sprintf "%.1f ms" (t_off *. 1e3);
           string_of_int (iters r_off); "-" ];
         [
           "incremental on";
           Printf.sprintf "%.1f ms" (t_on *. 1e3);
           string_of_int (iters r_on);
           Printf.sprintf "delta edges %d, product reuse %d, seed rate %.2f"
             r_on.Loop.closure_delta_edges r_on.Loop.product_states_reused
             r_on.Loop.sat_seed_hit_rate;
         ];
         [ "speedup (min of 3 interleaved)"; Printf.sprintf "%.2fx" !min_ratio; "-"; "-" ];
       ]);
  json_metric "incremental speedup" !min_ratio;
  json_metric "iterations" (float_of_int (iters r_on));
  json_metric "closure delta edges" (float_of_int r_on.Loop.closure_delta_edges);
  json_metric "product states reused" (float_of_int r_on.Loop.product_states_reused);
  json_metric "sat seed hit rate" r_on.Loop.sat_seed_hit_rate;
  measure_tests "loop_incremental"
    [
      Test.make ~name:"loop(widelock12, incremental)"
        (Staged.stage (fun () -> ignore (run ~incremental:true)));
      Test.make ~name:"loop(widelock12, scratch)"
        (Staged.stage (fun () -> ignore (run ~incremental:false)));
    ]

(* -- EXP-T15: verification service ----------------------------------------- *)

let exp_t15 () =
  header "EXP-T15"
    "Verification service: sustained campaign submissions against the mechaserve daemon, \
     cold vs warm shared cache";
  let module Server = Mechaml_serve.Server in
  let module Client = Mechaml_serve.Client in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let srv = Server.start { Server.default with Server.workers = 4 } in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
      let submit ?(tenant = "bench") ?select () =
        match Client.submit ep ~tenant ~tiny:true ?select () with
        | Ok outcomes -> outcomes
        | Error e -> failwith (Client.error_string e)
      in
      let submit_lock ?tenant () =
        match Client.submit ep ?tenant ~select:"lock/n96" () with
        | Ok outcomes -> outcomes
        | Error e -> failwith (Client.error_string e)
      in
      (* one tiny submission first warms the HTTP/scheduler path (and the
         tiny families' cache entries) without touching the lock family, so
         the cold row below isolates cache-cold verification compute *)
      ignore (submit ());
      (* the heavy lock instance's cost is closure construction and model
         checking — exactly the stages the shared cache memoizes, so the
         cold/warm gap is what a persistent warm daemon buys over paying the
         cold cache in a fresh process per campaign *)
      let _, cold = time (fun () -> submit_lock ()) in
      let warm_n = 20 in
      let _, warm_total =
        time (fun () ->
            for _ = 1 to warm_n do
              ignore (submit_lock ())
            done)
      in
      let warm = warm_total /. float_of_int warm_n in
      (* sustained request rate on the tiny matrix: per-request protocol and
         scheduling overhead, single client then two concurrent clients *)
      let n = 25 in
      let _, tiny_total = time (fun () -> for _ = 1 to n do ignore (submit ()) done) in
      let _, conc_total =
        time (fun () ->
            let client tenant () =
              for _ = 1 to n do
                ignore (submit ~tenant ())
              done
            in
            let d1 = Domain.spawn (client "bench-a") in
            let d2 = Domain.spawn (client "bench-b") in
            Domain.join d1;
            Domain.join d2)
      in
      let rps wall reqs = float_of_int reqs /. wall in
      print_endline
        (Pp.table
           ~header:[ "configuration"; "wall clock"; "requests/sec" ]
           [
             [ "lock/n96, cold cache"; Printf.sprintf "%.2f ms" (cold *. 1e3);
               Printf.sprintf "%.1f" (rps cold 1) ];
             [ Printf.sprintf "lock/n96, warm cache (avg of %d)" warm_n;
               Printf.sprintf "%.2f ms" (warm *. 1e3);
               Printf.sprintf "%.1f" (rps warm 1) ];
             [ Printf.sprintf "tiny matrix, %d submissions" n;
               Printf.sprintf "%.1f ms" (tiny_total *. 1e3);
               Printf.sprintf "%.1f" (rps tiny_total n) ];
             [ Printf.sprintf "tiny matrix, 2 clients x %d" n;
               Printf.sprintf "%.1f ms" (conc_total *. 1e3);
               Printf.sprintf "%.1f" (rps conc_total (2 * n)) ];
           ]);
      Printf.printf "\nwarm cache requests/sec gain over cold: %.2fx\n" (cold /. warm);
      json_metric "cold lock submission s" cold;
      json_metric "warm lock submission s" warm;
      json_metric "warm speedup vs cold" (cold /. warm);
      json_metric "warm requests per sec" (rps tiny_total n);
      json_metric "concurrent requests per sec" (rps conc_total (2 * n)))

(* -- EXP-T16: resilience overhead ------------------------------------------- *)

(* The self-healing machinery (deadline watchdog, WAL journaling, quarantine
   bookkeeping) rides on every job; this measures what it costs when nothing
   goes wrong — the only regime where its cost matters.  Self-contained
   on-vs-off in one process: interleaved rounds against two daemons, one
   bare, one with deadlines + WAL, on the same warm cache.  The min-of-rounds
   ratio damps scheduler noise; the guard asserts the overhead stays small. *)
let exp_t16 () =
  header "EXP-T16"
    "Resilience overhead: tiny-matrix submission throughput with the deadline watchdog \
     and write-ahead log on vs off";
  let module Server = Mechaml_serve.Server in
  let module Client = Mechaml_serve.Client in
  let wal = Filename.temp_file "mechaserve-bench" ".wal" in
  Sys.remove wal;
  let bare = Server.start { Server.default with Server.workers = 4 } in
  let guarded =
    Server.start
      {
        Server.default with
        Server.workers = 4;
        job_deadline_s = Some 60.;
        wal = Some wal;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop bare;
      Server.stop guarded;
      if Sys.file_exists wal then Sys.remove wal)
    (fun () ->
      let submit srv =
        let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
        match Client.submit ep ~tenant:"bench" ~tiny:true () with
        | Ok _ -> ()
        | Error e -> failwith (Client.error_string e)
      in
      (* warm both caches and both HTTP paths before timing anything *)
      submit bare;
      submit guarded;
      let n = 15 in
      let round srv =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          submit srv
        done;
        Unix.gettimeofday () -. t0
      in
      (* best-of over interleaved rounds, sampling adaptively: a round is
         ~20ms, so one scheduler hiccup on the guarded side fakes a big
         ratio.  Best-of is monotone, so extra rounds can only converge the
         ratio toward the true floor — a systematic regression stays above
         budget no matter how long we sample, transient noise does not. *)
      let min_rounds = 5 and max_rounds = 24 in
      let best_off = ref infinity and best_on = ref infinity in
      let rounds = ref 0 in
      while
        !rounds < min_rounds
        || (!rounds < max_rounds && !best_on /. !best_off > 1.05)
      do
        incr rounds;
        best_off := Float.min !best_off (round bare);
        best_on := Float.min !best_on (round guarded)
      done;
      let rounds = !rounds in
      let overhead = !best_on /. !best_off in
      let rps wall = float_of_int n /. wall in
      print_endline
        (Pp.table
           ~header:[ "configuration"; "wall clock"; "requests/sec" ]
           [
             [ Printf.sprintf "bare daemon, %d submissions (best of %d)" n rounds;
               Printf.sprintf "%.1f ms" (!best_off *. 1e3);
               Printf.sprintf "%.1f" (rps !best_off) ];
             [ "watchdog + WAL";
               Printf.sprintf "%.1f ms" (!best_on *. 1e3);
               Printf.sprintf "%.1f" (rps !best_on) ];
             [ "overhead"; Printf.sprintf "%.3fx" overhead; "-" ];
           ]);
      json_metric "resilience overhead ratio" overhead;
      json_metric "bare requests per sec" (rps !best_off);
      json_metric "guarded requests per sec" (rps !best_on);
      (* the watchdog ticks off-path and the WAL appends without fsync: when
         nothing fails, self-healing must cost noise, not throughput *)
      if overhead > 1.05 then
        Printf.printf
          "\nWARNING: resilience overhead %.3fx exceeds the 1.05x budget\n" overhead;
      assert (overhead <= 1.05))

(* -- EXP-T17: observability overhead ---------------------------------------- *)

(* Request-scoped observability (trace spans stamped with the request id, SLO
   histograms on every stage, the flight recorder catching every admission
   and verdict) also rides on every job; this pins its cost against the PR-7
   resilience configuration.  Trace and Flight are process-global switches,
   so one guarded daemon serves both arms: interleaved rounds toggle the
   instrumentation on and off around the same warm cache, and the trace
   buffer is dropped after each instrumented round so memory stays flat. *)
let exp_t17 () =
  header "EXP-T17"
    "Observability overhead: tiny-matrix submission throughput fully instrumented \
     (spans + SLO histograms + flight recorder) vs silenced";
  let module Server = Mechaml_serve.Server in
  let module Client = Mechaml_serve.Client in
  let module Trace = Mechaml_obs.Trace in
  let module Flight = Mechaml_obs.Flight in
  let wal = Filename.temp_file "mechaserve-bench" ".wal" in
  Sys.remove wal;
  let srv =
    Server.start
      {
        Server.default with
        Server.workers = 4;
        job_deadline_s = Some 60.;
        wal = Some wal;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Trace.disable ();
      Trace.reset ();
      Flight.disable ();
      Flight.configure ~size:Flight.default_size;
      if Sys.file_exists wal then Sys.remove wal)
    (fun () ->
      let ep = { Client.host = "127.0.0.1"; port = Server.port srv } in
      let submit () =
        match Client.submit ep ~tenant:"bench" ~tiny:true () with
        | Ok _ -> ()
        | Error e -> failwith (Client.error_string e)
      in
      submit ();
      let n = 30 in
      let round_off () =
        Trace.disable ();
        Flight.disable ();
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          submit ()
        done;
        Unix.gettimeofday () -. t0
      in
      let round_on () =
        Trace.enable ();
        Flight.enable ();
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          submit ()
        done;
        let dt = Unix.gettimeofday () -. t0 in
        Trace.reset ();
        dt
      in
      (* best-of over interleaved rounds, adaptively extended, as in EXP-T16:
         best-of is monotone, so noise converges while a systematic
         regression stays above budget *)
      let min_rounds = 5 and max_rounds = 24 in
      let best_off = ref infinity and best_on = ref infinity in
      let rounds = ref 0 in
      while
        !rounds < min_rounds
        || (!rounds < max_rounds && !best_on /. !best_off > 1.05)
      do
        incr rounds;
        best_off := Float.min !best_off (round_off ());
        best_on := Float.min !best_on (round_on ())
      done;
      let rounds = !rounds in
      let overhead = !best_on /. !best_off in
      let rps wall = float_of_int n /. wall in
      print_endline
        (Pp.table
           ~header:[ "configuration"; "wall clock"; "requests/sec" ]
           [
             [ Printf.sprintf "silenced, %d submissions (best of %d)" n rounds;
               Printf.sprintf "%.1f ms" (!best_off *. 1e3);
               Printf.sprintf "%.1f" (rps !best_off) ];
             [ "spans + SLO + flight recorder";
               Printf.sprintf "%.1f ms" (!best_on *. 1e3);
               Printf.sprintf "%.1f" (rps !best_on) ];
             [ "overhead"; Printf.sprintf "%.3fx" overhead; "-" ];
           ]);
      json_metric "observability overhead ratio" overhead;
      json_metric "silenced requests per sec" (rps !best_off);
      json_metric "instrumented requests per sec" (rps !best_on);
      (* spans are two clock reads and a buffer push, flight events one
         fetch-and-add and a CAS: full instrumentation must cost noise *)
      if overhead > 1.05 then
        Printf.printf
          "\nWARNING: observability overhead %.3fx exceeds the 1.05x budget\n" overhead;
      assert (overhead <= 1.05))


(* -- EXP-T18: sharded, out-of-core exploration ----------------------------- *)

(* A coprime mesh: the left operand cycles through [w] states, the right
   through [h]; every joint step advances both, and a second "reset" signal
   sends both home.  With gcd(w,h) = 1 the reachable product is the full
   [w*h] grid — two orders of magnitude beyond any other bench group — while
   the operands stay tiny, so the measured cost is all product machinery. *)
let mesh_pair ~w ~h =
  let left =
    let b =
      Automaton.Builder.create ~name:"meshL" ~inputs:[] ~outputs:[ "q"; "r" ] ()
    in
    let st i = Printf.sprintf "l%d" i in
    for i = 0 to w - 1 do
      Automaton.Builder.add_trans b ~src:(st i) ~outputs:[ "q" ] ~dst:(st ((i + 1) mod w)) ();
      Automaton.Builder.add_trans b ~src:(st i) ~outputs:[ "r" ] ~dst:(st 0) ()
    done;
    Automaton.Builder.set_initial b [ st 0 ];
    Automaton.Builder.build b
  in
  let right =
    let b =
      Automaton.Builder.create ~name:"meshR" ~inputs:[ "q"; "r" ] ~outputs:[] ()
    in
    let st j = Printf.sprintf "r%d" j in
    for j = 0 to h - 1 do
      Automaton.Builder.add_trans b ~src:(st j) ~inputs:[ "q" ] ~dst:(st ((j + 1) mod h)) ();
      Automaton.Builder.add_trans b ~src:(st j) ~inputs:[ "r" ] ~dst:(st 0) ()
    done;
    Automaton.Builder.set_initial b [ st 0 ];
    Automaton.Builder.build b
  in
  (left, right)

let exp_t18 () =
  header "EXP-T18"
    "Sharded, out-of-core product exploration: partitioned fixpoints and spilled \
     segments vs the materialized pipeline";
  let w = 1153 and h = 1024 in
  (* both obligations exercise a backward closure and the deadlock bit *)
  let phi = Ctl.And (Ctl.deadlock_free, Ctl.Ag (None, Ctl.Not Ctl.Deadlock)) in
  let left, right = mesh_pair ~w ~h in
  let time f =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let materialized () =
    let p = Compose.parallel left right in
    ( Checker.holds p.Compose.auto phi,
      Automaton.num_states p.Compose.auto,
      Automaton.num_transitions p.Compose.auto )
  in
  let sharded ?mem_budget ?workers shards =
    let sp =
      Shard.explore ~config:(Shard.config ~shards ?mem_budget ?workers ()) left right
    in
    Fun.protect
      ~finally:(fun () -> Shard.close sp)
      (fun () ->
        let senv = Shardsat.create sp in
        ( Shardsat.holds_initially senv phi,
          Shard.num_states sp,
          Shard.num_transitions sp ))
  in
  let (ref_holds, ref_states, ref_trans), t_ref = time materialized in
  assert (ref_states = w * h);
  assert ref_holds;
  let rows = ref [] in
  let row name t = rows := [ name; Printf.sprintf "%.2f s" t ] :: !rows in
  row "materialized compose + check" t_ref;
  json_metric "product states" (float_of_int ref_states);
  json_metric "product transitions" (float_of_int ref_trans);
  json_metric "materialized wall s" t_ref;
  (* every shard count reproduces the materialized verdict and sizes *)
  List.iter
    (fun k ->
      let (holds, states, trans), t = time (fun () -> sharded k) in
      assert (holds = ref_holds && states = ref_states && trans = ref_trans);
      row (Printf.sprintf "sharded, %d shard(s)" k) t;
      json_metric (Printf.sprintf "sharded %d wall s" k) t)
    [ 1; 2; 8 ];
  (* out of core: an 8 MiB residency budget is ~8x below the live segment
     size of this product, so the run must spill — and still agree *)
  let spills_before = Segment.total_spills () in
  let (holds, states, _), t_spill =
    time (fun () -> sharded ~mem_budget:(8 * 1024 * 1024) 8)
  in
  assert (holds = ref_holds && states = ref_states);
  let spilled = Segment.total_spills () - spills_before in
  assert (spilled > 0);
  row "sharded x8, 8 MiB budget (spilling)" t_spill;
  json_metric "spilled segments" (float_of_int spilled);
  json_metric "reloads" (float_of_int (Segment.total_reloads ()));
  json_metric "sharded x8 budgeted wall s" t_spill;
  (* shards:1 overhead vs the materialized pipeline: interleaved best-of-3
     pairs from compacted heaps (the exp_t14 protocol), so one GC slice or
     preemption cannot manufacture a ratio *)
  ignore (materialized ());
  ignore (sharded 1);
  let timed f =
    let _, t1 = time f in
    let _, t2 = time f in
    Float.min t1 t2
  in
  let min_overhead = ref infinity in
  for _ = 1 to 3 do
    let t_m = timed materialized in
    let t_s = timed (fun () -> sharded 1) in
    if t_s /. t_m < !min_overhead then min_overhead := t_s /. t_m
  done;
  rows := [ "overhead, --shards 1 (min of 3)"; Printf.sprintf "%.3fx" !min_overhead ] :: !rows;
  json_metric "shards1 overhead ratio" !min_overhead;
  (* worker scaling at fixed shards needs real cores; single-core CI runners
     would only measure timesharing, so the assertion gates on the machine *)
  (if Domain.recommended_domain_count () >= 4 then begin
     let _, t1 = time (fun () -> sharded ~workers:1 8) in
     let _, t4 = time (fun () -> sharded ~workers:4 8) in
     let speedup = t1 /. t4 in
     rows := [ "workers 1 -> 4 speedup (8 shards)"; Printf.sprintf "%.2fx" speedup ] :: !rows;
     json_metric "workers4 speedup" speedup;
     if speedup < 2.0 then
       Printf.printf "\nWARNING: workers:4 speedup %.2fx below the 2x floor\n" speedup;
     assert (speedup >= 1.5)
   end
   else
     print_endline "(workers-scaling assertion skipped: fewer than 4 cores)");
  print_endline (Pp.table ~header:[ "configuration"; "result" ] (List.rev !rows));
  if !min_overhead > 1.05 then
    Printf.printf "\nWARNING: --shards 1 overhead %.3fx exceeds the 1.05x budget\n"
      !min_overhead;
  assert (!min_overhead <= 1.05)

(* -- EXP-T19: cross-process distributed sharding --------------------------- *)

let exp_t19 () =
  header "EXP-T19"
    "Cross-process distributed sharding: a forked shard-worker fleet shipping \
     digest-verified segments over the wire vs the in-process sharded pipeline";
  (* fork-mode workers re-exec the mechaverify binary (its [shard-worker]
     subcommand); the bench binary has no such command, so point the spawner
     at the sibling build product unless the caller already did *)
  (if Sys.getenv_opt "MECHAVERIFY_BIN" = None then begin
     let guess =
       List.fold_left Filename.concat
         (Filename.dirname Sys.executable_name)
         [ Filename.parent_dir_name; "bin"; "mechaverify.exe" ]
     in
     if Sys.file_exists guess then Unix.putenv "MECHAVERIFY_BIN" guess
     else
       failwith
         "t19_dist: set MECHAVERIFY_BIN to a built mechaverify binary \
          (fork-mode workers re-exec it as `mechaverify shard-worker`)"
   end);
  let w = 1153 and h = 1024 in
  let phi = Ctl.And (Ctl.deadlock_free, Ctl.Ag (None, Ctl.Not Ctl.Deadlock)) in
  let left, right = mesh_pair ~w ~h in
  let time f =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sharded shards =
    let sp = Shard.explore ~config:(Shard.config ~shards ()) left right in
    Fun.protect
      ~finally:(fun () -> Shard.close sp)
      (fun () ->
        let senv = Shardsat.create sp in
        ( Shardsat.holds_initially senv phi,
          Shard.num_states sp,
          Shard.num_transitions sp ))
  in
  (* a distributed run returns the verdict triple plus the coordinator's
     post-check segment residency, sampled while the manager is still live *)
  let distributed ?mem_budget ?(pair = (left, right)) ~workers shards =
    let config =
      Shard.config ~shards ?mem_budget
        ~distribution:(Shard.distribution ~deadline_s:120. (Shard.Fork workers))
        ()
    in
    let l, r = pair in
    let dp = Distshard.explore ~config l r in
    Fun.protect
      ~finally:(fun () -> Distshard.close dp)
      (fun () ->
        let denv = Distsat.create dp in
        let holds = Distsat.holds_initially denv phi in
        ( (holds, Distshard.num_states dp, Distshard.num_transitions dp),
          Segment.resident_bytes (Distshard.manager dp) ))
  in
  let (ref_holds, ref_states, ref_trans), t_ref = time (fun () -> sharded 8) in
  assert (ref_states = w * h);
  assert ref_holds;
  let rows = ref [] in
  let row name t = rows := [ name; Printf.sprintf "%.2f s" t ] :: !rows in
  row "in-process sharded x8" t_ref;
  json_metric "product states" (float_of_int ref_states);
  json_metric "in-process sharded x8 wall s" t_ref;
  (* two forked workers reproduce the in-process verdict and sizes exactly;
     the wire totals below are what that byte-identity costs in traffic *)
  let rounds0 = Distshard.total_rounds () in
  let tx0 = Distshard.total_bytes_tx () and rx0 = Distshard.total_bytes_rx () in
  let (verdict, _), t_dist2 = time (fun () -> distributed ~workers:2 8) in
  assert (verdict = (ref_holds, ref_states, ref_trans));
  row "distributed, 2 fork workers, x8" t_dist2;
  json_metric "distributed 2-worker wall s" t_dist2;
  json_metric "wire rounds" (float_of_int (Distshard.total_rounds () - rounds0));
  json_metric "wire MiB tx"
    (float_of_int (Distshard.total_bytes_tx () - tx0) /. (1024. *. 1024.));
  json_metric "wire MiB rx"
    (float_of_int (Distshard.total_bytes_rx () - rx0) /. (1024. *. 1024.));
  (* out of core on the coordinator: a larger mesh under an 8 MiB residency
     budget must spill, and the coordinator's live segment bytes must stay
     at or under the budget even though every worker streams full segment
     generations back to be banked for crash recovery *)
  let budget = 8 * 1024 * 1024 in
  let wide = mesh_pair ~w:1283 ~h:1152 in
  let spills_before = Segment.total_spills () in
  let ((b_holds, b_states, _), resident), t_budget =
    time (fun () -> distributed ~mem_budget:budget ~pair:wide ~workers:2 8)
  in
  assert (b_holds = ref_holds && b_states = 1283 * 1152);
  let spilled = Segment.total_spills () - spills_before in
  assert (spilled > 0);
  assert (resident <= budget);
  row "distributed x8, larger mesh, 8 MiB budget (spilling)" t_budget;
  json_metric "budgeted mesh states" (float_of_int (1283 * 1152));
  json_metric "spilled segments" (float_of_int spilled);
  json_metric "coordinator resident MiB" (float_of_int resident /. (1024. *. 1024.));
  json_metric "budgeted distributed wall s" t_budget;
  (* multi-process scaling needs real cores: on a single-core runner forked
     workers only timeshare, so the assertion gates on the machine exactly
     like EXP-T18's in-process worker scaling *)
  (if Domain.recommended_domain_count () >= 4 then begin
     let _, t1 = time (fun () -> distributed ~workers:1 8) in
     let _, t4 = time (fun () -> distributed ~workers:4 8) in
     let speedup = t1 /. t4 in
     rows :=
       [ "fork workers 1 -> 4 speedup (8 shards)"; Printf.sprintf "%.2fx" speedup ]
       :: !rows;
     json_metric "fork workers4 speedup" speedup;
     if speedup < 2.0 then
       Printf.printf "\nWARNING: fork workers:4 speedup %.2fx below the 2x floor\n"
         speedup;
     assert (speedup >= 1.5)
   end
   else
     print_endline "(multi-process scaling assertion skipped: fewer than 4 cores)");
  assert (Distshard.total_restarts () = 0);
  print_endline (Pp.table ~header:[ "configuration"; "result" ] (List.rev !rows))

(* -- main ------------------------------------------------------------------ *)

let groups =
  [
    ("fig3", exp_fig3);
    ("fig4", exp_fig4);
    ("fig5", exp_fig5);
    ("listing1_1", exp_listing1_1);
    ("fig6_conflict", exp_fig6);
    ("fig7_proof", exp_fig7);
    ("t1_vs_lstar", exp_t1);
    ("t2_context", exp_t2);
    ("t3_strategy", exp_t3);
    ("t4_mc_scale", exp_t4);
    ("t5_probe", exp_t5);
    ("t6_amc", exp_t6);
    ("t7_wmethod", exp_t7);
    ("t8_timed", exp_t8);
    ("t9_qos", exp_t9);
    ("t10_batch", exp_t10);
    ("t11_onthefly", exp_t11);
    ("t12_ce_processing", exp_t12);
    ("t13_campaign", exp_t13);
    ("t14_loop_incremental", exp_t14);
    ("t15_serve", exp_t15);
    ("t16_resilience", exp_t16);
    ("t17_obs_serve", exp_t17);
    ("t18_sharded", exp_t18);
    ("t19_dist", exp_t19);
  ]

let () =
  let rec parse_args = function
    | [] -> []
    | "--json" :: path :: rest ->
      json_path := Some path;
      (* machine-readable runs also collect the obs registry (counters,
         histograms) and embed it in the output under "obs" *)
      Mechaml_obs.Metrics.set_enabled true;
      parse_args rest
    | [ "--json" ] ->
      Printf.eprintf "--json needs a path, e.g. --json BENCH_run.json\n";
      exit 2
    | name :: rest -> name :: parse_args rest
  in
  let selected =
    match parse_args (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst groups
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name groups with
      | Some f ->
        current_group := name;
        (* full-suite hygiene: don't let one group's garbage (chaos closures,
           big products) skew the GC behaviour measured in the next *)
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        f ();
        json_groups := (name, Unix.gettimeofday () -. t0) :: !json_groups
      | None ->
        Printf.eprintf "unknown group %S; available: %s\n" name
          (String.concat ", " (List.map fst groups));
        exit 2)
    selected;
  Option.iter write_json !json_path
