(* bench_check — CI-side validation of the observability artefacts:

     bench_check compare BASE NEW [--slack 0.25]
       Diff two bench --json files: a benchmark present in both that got
       slower than BASE * (1 + slack) is a regression (exit 1).  Speedups,
       new and vanished benchmarks are reported but never fail the check,
       so the baseline only needs refreshing when benchmarks are added.

     bench_check speedup BASE NEW
       Report-only perf trajectory: per-benchmark speedup factors of NEW
       over BASE and the geometric-mean speedup per group.  Groups present
       in only one snapshot are skipped with a warning (they used to reach
       the zero-row geometric mean and print NaN).  Never fails (exit 0
       whatever the numbers) — CI prints it next to the blocking compare so
       a perf PR's claims are auditable from the logs alone.

     bench_check validate-trace FILE
       FILE must parse as JSON and be a top-level array of trace_event
       objects, each with a string "name"/"ph" and a numeric "ts" — the
       shape Perfetto and chrome://tracing load.

     bench_check validate-metrics FILE
       FILE must be Prometheus text exposition output with no duplicate
       # TYPE headers and no duplicate samples (same name and label set). *)

module Json = Mechaml_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_check: " ^ m); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error m -> fail "%s" m

let parse_file path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error m -> fail "%s: %s" path m

(* -- compare -------------------------------------------------------------- *)

let benchmarks path json =
  match Bench_check_lib.benchmarks json with
  | Ok rows -> rows
  | Error m -> fail "%s: %s" path m

let human_ns = Bench_check_lib.human_ns

let compare_cmd base_path new_path slack =
  let base = benchmarks base_path (parse_file base_path) in
  let fresh = benchmarks new_path (parse_file new_path) in
  let regressions = ref 0 in
  List.iter
    (fun ((group, name), was) ->
      match List.assoc_opt (group, name) fresh with
      | None -> Printf.printf "gone     %s/%s (in baseline only)\n" group name
      | Some now when was > 0. && now > was *. (1. +. slack) ->
        incr regressions;
        Printf.printf "SLOWER   %s/%s: %s -> %s (%+.0f%%, slack %.0f%%)\n" group name
          (human_ns was) (human_ns now)
          (100. *. ((now /. was) -. 1.))
          (100. *. slack)
      | Some now when was > 0. && now < was /. (1. +. slack) ->
        Printf.printf "faster   %s/%s: %s -> %s (%+.0f%%)\n" group name (human_ns was)
          (human_ns now)
          (100. *. ((now /. was) -. 1.))
      | Some _ -> ())
    base;
  List.iter
    (fun ((group, name), _) ->
      if not (List.mem_assoc (group, name) base) then
        Printf.printf "new      %s/%s (not in baseline)\n" group name)
    fresh;
  if !regressions > 0 then fail "%d benchmark(s) regressed beyond the slack" !regressions;
  Printf.printf "ok: %d benchmarks within %.0f%% of %s\n" (List.length fresh)
    (100. *. slack) base_path

(* -- speedup -------------------------------------------------------------- *)

let speedup_cmd base_path new_path =
  let base = benchmarks base_path (parse_file base_path) in
  let fresh = benchmarks new_path (parse_file new_path) in
  let r = Bench_check_lib.speedup ~base ~fresh in
  List.iter
    (fun (row : Bench_check_lib.row) ->
      Printf.printf "x%-6.2f  %s/%s: %s -> %s\n" row.factor row.group row.name
        (human_ns row.was) (human_ns row.now))
    r.Bench_check_lib.rows;
  List.iter
    (fun (group, reason) -> Printf.printf "warning  %s skipped: %s\n" group reason)
    r.Bench_check_lib.skipped;
  match r.Bench_check_lib.overall with
  | None -> print_endline "speedup: no benchmark appears in both files"
  | Some overall ->
    print_newline ();
    List.iter
      (fun (g : Bench_check_lib.group_speedup) ->
        Printf.printf "group x%-6.2f  %s (%d benchmark%s, geometric mean)\n" g.g_geomean
          g.g_group g.g_benchmarks
          (if g.g_benchmarks = 1 then "" else "s"))
      r.Bench_check_lib.groups;
    Printf.printf "overall x%.2f (%d benchmarks, geometric mean) vs %s\n"
      overall.Bench_check_lib.g_geomean overall.Bench_check_lib.g_benchmarks base_path

(* -- validate-trace ------------------------------------------------------- *)

let validate_trace path =
  let events =
    match parse_file path with
    | Json.List events -> events
    | _ -> fail "%s: top-level value is not an array" path
  in
  List.iteri
    (fun i ev ->
      let str k = Option.bind (Json.member k ev) Json.to_str in
      let num k = Option.bind (Json.member k ev) Json.to_float in
      match (str "name", str "ph", num "ts") with
      | Some _, Some _, Some _ -> ()
      | _ -> fail "%s: event %d lacks a string \"name\"/\"ph\" or numeric \"ts\"" path i)
    events;
  Printf.printf "ok: %s is a trace_event array of %d events\n" path (List.length events)

(* -- validate-metrics ----------------------------------------------------- *)

let validate_metrics path =
  let seen_types = Hashtbl.create 16 and seen_samples = Hashtbl.create 64 in
  let samples = ref 0 in
  String.split_on_char '\n' (read_file path)
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         if line = "" then ()
         else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
           let name =
             match String.split_on_char ' ' line with
             | _ :: _ :: name :: _ -> name
             | _ -> fail "%s:%d: malformed # TYPE line" path lineno
           in
           if Hashtbl.mem seen_types name then
             fail "%s:%d: duplicate # TYPE for %s" path lineno name;
           Hashtbl.add seen_types name ()
         end
         else if line.[0] = '#' then ()
         else begin
           (* a sample: [name{labels} value] — the series key is everything
              before the last space *)
           match String.rindex_opt line ' ' with
           | None -> fail "%s:%d: malformed sample line %S" path lineno line
           | Some sp ->
             let series = String.sub line 0 sp in
             if Hashtbl.mem seen_samples series then
               fail "%s:%d: duplicate sample for %s" path lineno series;
             Hashtbl.add seen_samples series ();
             incr samples
         end);
  Printf.printf "ok: %s has %d samples across %d metrics, no duplicates\n" path !samples
    (Hashtbl.length seen_types)

(* -- entry ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: bench_check compare BASE NEW [--slack FRACTION]\n\
    \       bench_check speedup BASE NEW\n\
    \       bench_check validate-trace FILE\n\
    \       bench_check validate-metrics FILE";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "compare" :: base :: fresh :: rest ->
    let slack =
      match rest with
      | [] -> 0.25
      | [ "--slack"; s ] -> (
        match float_of_string_opt s with
        | Some f when f >= 0. -> f
        | _ -> fail "--slack needs a non-negative number, got %S" s)
      | _ -> usage ()
    in
    compare_cmd base fresh slack
  | [ _; "speedup"; base; fresh ] -> speedup_cmd base fresh
  | [ _; "validate-trace"; path ] -> validate_trace path
  | [ _; "validate-metrics"; path ] -> validate_metrics path
  | _ -> usage ()
