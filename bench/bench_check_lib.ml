(* The testable core of bench_check: parsing bench --json snapshots and the
   speedup aggregation.  The executable keeps only IO and exit codes, so the
   aggregation edge cases — above all a group present in one snapshot only,
   which used to fall through to the geometric mean with no rows and print
   NaN — are pinned by test/test_bench_check.ml. *)

module Json = Mechaml_obs.Json

(* (group, name) -> ns/run rows of a bench --json file.  [Error] when the
   top-level "benchmarks_ns_per_run" array is missing (not a bench --json
   file); rows whose value is null (a NaN estimate on that run) are
   dropped. *)
let benchmarks json =
  match Json.member "benchmarks_ns_per_run" json with
  | Some (Json.List rows) ->
    Ok
      (List.filter_map
         (fun row ->
           match
             ( Option.bind (Json.member "group" row) Json.to_str,
               Option.bind (Json.member "name" row) Json.to_str,
               Option.bind (Json.member "value" row) Json.to_float )
           with
           | Some g, Some n, Some v -> Some ((g, n), v)
           | _ -> None)
         rows)
  | _ -> Error "no \"benchmarks_ns_per_run\" array (not a bench --json file?)"

let human_ns ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* -- speedup aggregation -------------------------------------------------- *)

type row = { group : string; name : string; was : float; now : float; factor : float }

type group_speedup = { g_group : string; g_geomean : float; g_benchmarks : int }

type report = {
  rows : row list;  (** benchmarks shared by both snapshots, base order *)
  groups : group_speedup list;  (** geometric means, base order *)
  overall : group_speedup option;  (** [None] when no benchmark is shared *)
  skipped : (string * string) list;
      (** (group, reason) for groups contributing no speedup row: present in
          one snapshot only, or sharing no benchmark name with the other *)
}

let groups_of rows =
  List.fold_left
    (fun acc ((g, _), _) -> if List.mem g acc then acc else g :: acc)
    [] rows
  |> List.rev

let speedup ~base ~fresh =
  let rows =
    List.filter_map
      (fun ((group, name), was) ->
        match List.assoc_opt (group, name) fresh with
        | Some now when was > 0. && now > 0. ->
          Some { group; name; was; now; factor = was /. now }
        | _ -> None)
      base
  in
  (* Geometric mean per group, in base insertion order. *)
  let covered = groups_of (List.map (fun r -> ((r.group, r.name), r.factor)) rows) in
  let groups =
    List.map
      (fun g ->
        let factors =
          List.filter_map (fun r -> if r.group = g then Some r.factor else None) rows
        in
        let n = List.length factors in
        {
          g_group = g;
          g_geomean = exp (List.fold_left (fun a s -> a +. log s) 0. factors /. float_of_int n);
          g_benchmarks = n;
        })
      covered
  in
  let overall =
    match rows with
    | [] -> None
    | _ ->
      let n = List.length rows in
      Some
        {
          g_group = "";
          g_geomean =
            exp (List.fold_left (fun a r -> a +. log r.factor) 0. rows /. float_of_int n);
          g_benchmarks = n;
        }
  in
  (* A group with no speedup row would divide by a zero count — report it
     instead of aggregating it. *)
  let base_groups = groups_of base and fresh_groups = groups_of fresh in
  let skipped =
    List.filter_map
      (fun g ->
        if List.mem g covered then None
        else if not (List.mem g fresh_groups) then
          Some (g, "only in the baseline snapshot")
        else Some (g, "no comparable benchmark in both snapshots"))
      base_groups
    @ List.filter_map
        (fun g ->
          if List.mem g base_groups then None else Some (g, "only in the new snapshot"))
        fresh_groups
  in
  { rows; groups; overall; skipped }
