# Tier-1 gate: build, tests, and a campaign smoke run.
.PHONY: all build test smoke check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Two workers over the four-job matrix: exercises the pool, the memo cache
# and the report path end-to-end in a few hundred milliseconds.
smoke: build
	dune exec bin/mechaverify.exe -- campaign --tiny --jobs 2

check: build test smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
