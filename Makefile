# Tier-1 gate: build, tests, and a campaign smoke run.
.PHONY: all build test smoke check faults-smoke kill-resume obs-smoke serve-smoke serve-chaos shard-smoke dist-smoke bench bench-check bench-speedup bench-speedup-pr5 bench-speedup-pr9 bench-speedup-pr10 clean

all: build

build:
	dune build

test:
	dune runtest

# Two workers over the four-job matrix: exercises the pool, the memo cache
# and the report path end-to-end in a few hundred milliseconds.
smoke: build
	dune exec bin/mechaverify.exe -- campaign --tiny --jobs 2

check: build test smoke

# Fault-injection smoke: under injected chaos every job must end in a
# definite verdict or a graceful degradation — never failed or timed out
# (retry heals crashes, voting masks lies, the breaker degrades).
faults-smoke: build
	dune exec bin/mechaverify.exe -- campaign --tiny --jobs 2 \
	  --inject crash+flaky --seed 11 --votes 3 --breaker 24 \
	  --report _build/faults-smoke.json
	! grep -q '"verdict": "failed"' _build/faults-smoke.json
	! grep -q '"verdict": "timed_out"' _build/faults-smoke.json

# Kill-and-resume: SIGKILL a journaled run mid-flight, then resume the
# journal and require the verdict of an uninterrupted run (exit 0 = proved).
kill-resume: build
	rm -rf _build/resume && mkdir -p _build/resume
	dune exec bin/mechaverify.exe -- export --dir _build/resume/aut
	-timeout -s KILL 0.4 ./_build/default/bin/mechaverify.exe run \
	  --context _build/resume/aut/railcab_context.aut \
	  --legacy _build/resume/aut/railcab_legacy_correct.aut \
	  --property true --inject hang --seed 5 \
	  --journal _build/resume/kill.journal
	test -s _build/resume/kill.journal
	./_build/default/bin/mechaverify.exe run \
	  --context _build/resume/aut/railcab_context.aut \
	  --legacy _build/resume/aut/railcab_legacy_correct.aut \
	  --property true --resume _build/resume/kill.journal

# Observability smoke: a traced, metered campaign must emit a loadable
# Chrome trace (a well-formed trace_event JSON array) and Prometheus text
# with no duplicate headers or samples.
obs-smoke: build
	rm -rf _build/obs && mkdir -p _build/obs
	dune exec bin/mechaverify.exe -- campaign --tiny --jobs 2 --log-level quiet \
	  --trace _build/obs/trace.json --metrics-out _build/obs/metrics.prom
	dune exec bench/bench_check.exe -- validate-trace _build/obs/trace.json
	dune exec bench/bench_check.exe -- validate-metrics _build/obs/metrics.prom

# Verification-service smoke: daemon up on an ephemeral port, two concurrent
# tenants stream identical verdicts, /metrics scrapes the serve_* series,
# SIGTERM drains clean within the deadline and leaves a cache snapshot.
serve-smoke: build
	bash scripts/serve_smoke.sh

# Chaos equivalence gate: a seeded fault proxy (delays, torn writes, resets,
# response garbage) between retrying clients and the daemon; verdicts must
# stay byte-identical to a fault-free run, every job must execute exactly
# once, and a SIGKILL mid-campaign must recover through the write-ahead log.
serve-chaos: build
	bash scripts/serve_chaos.sh

# Sharded out-of-core smoke: the tiny campaign through --shards 4 under a
# memory budget must produce canonical bytes identical to the unsharded
# pipeline, engage disk spilling when the budget forces it, and leave no
# spill scratch behind — including after a sharded daemon's SIGTERM drain.
shard-smoke: build
	bash scripts/shard_smoke.sh

# Cross-process distributed smoke: the tiny campaign through --dist-workers 2
# (forked shard-worker processes), byte-identical canonicals, a SIGKILLed
# worker mid-campaign recovered invisibly, clean teardown.
dist-smoke: build
	bash scripts/dist_smoke.sh

bench:
	dune exec bench/main.exe

# Bench regression check: rerun the machine-readable benchmarks and compare
# against the committed baseline with 25% slack.  Only slowdowns beyond the
# slack fail; speedups and new benchmarks are informational (CI runs this
# non-blocking — shared runners are too noisy for a hard gate).
bench-check: build
	dune exec bench/main.exe -- --json _build/BENCH_run.json
	dune exec bench/bench_check.exe -- compare bench/BENCH_baseline.json \
	  _build/BENCH_run.json --slack 0.25

# Perf trajectory (report-only, never fails): speedup factors of the current
# tree against the committed pre-PR-4 engine snapshot.  Reuses bench-check's
# fresh run when present so CI pays for one bench sweep, not two.
bench-speedup: build
	test -f _build/BENCH_run.json || \
	  dune exec bench/main.exe -- --json _build/BENCH_run.json
	dune exec bench/bench_check.exe -- speedup bench/BENCH_pre_pr4.json \
	  _build/BENCH_run.json

# Incremental re-verification trajectory (report-only, never fails): speedup
# factors of the current tree against the snapshot taken just before the
# incremental engine landed.  Groups new since that snapshot (e.g.
# t14_loop_incremental itself) are skipped with a warning rather than
# aggregated.  Reuses bench-check's fresh run when present.
bench-speedup-pr5: build
	test -f _build/BENCH_run.json || \
	  dune exec bench/main.exe -- --json _build/BENCH_run.json
	dune exec bench/bench_check.exe -- speedup bench/BENCH_pre_pr5.json \
	  _build/BENCH_run.json

# Sharded-exploration trajectory (report-only, never fails): speedup factors
# against the snapshot taken just before the sharded engine landed.  The
# hard guarantees (shards:1 overhead <= 1.05x, worker scaling on multi-core
# machines, spill engagement) are asserted inside the t18_sharded group
# itself, which this target always re-runs.
bench-speedup-pr9: build
	dune exec bench/main.exe -- t18_sharded --json _build/BENCH_t18.json
	test -f _build/BENCH_run.json || \
	  dune exec bench/main.exe -- --json _build/BENCH_run.json
	dune exec bench/bench_check.exe -- speedup bench/BENCH_pre_pr9.json \
	  _build/BENCH_run.json

# Distributed-sharding trajectory (report-only, never fails): speedup factors
# against the snapshot taken just before the cross-process tier landed.  The
# hard guarantees (distributed verdict identity, coordinator residency under
# the budget, fork-worker scaling on multi-core machines) are asserted inside
# the t19_dist group itself, which this target always re-runs.
bench-speedup-pr10: build
	dune exec bench/main.exe -- t19_dist --json _build/BENCH_t19.json
	test -f _build/BENCH_run.json || \
	  dune exec bench/main.exe -- --json _build/BENCH_run.json
	dune exec bench/bench_check.exe -- speedup bench/BENCH_pre_pr10.json \
	  _build/BENCH_run.json

clean:
	dune clean
