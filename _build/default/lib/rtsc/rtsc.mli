(** Real-Time Statecharts (RTSC), the behavioural notation of MECHATRONIC
    UML roles and components, in the discrete-time simplification the paper
    adopts (Section 2): hierarchical states, transitions with message
    triggers/effects, and discrete clocks advancing one unit per step.

    A statechart {e flattens} to the automaton model of Definition 1: one
    automaton state per (leaf state, clock valuation) configuration, one time
    unit per transition.  Dwelling in a state is an explicit [∅/∅] delay
    step, permitted only while the state invariant holds — this realises the
    I/O-interval-structure reading of time the paper inherits from RAVEN.

    Hierarchical state names use [::] paths (e.g. [noConvoy::wait]); a
    flattened configuration is labelled with the (prefixed) names of {e all}
    its ancestors, so a pattern constraint over [frontRole.noConvoy] also
    covers the [answer] substate — exactly how the paper's Listing 1.4
    counterexample violates the constraint while the front role sits in a
    substate of [noConvoy]. *)

type cmp = Lt | Le | Eq | Ge | Gt

type clock_constraint = string * cmp * int

type t

val create :
  name:string -> inputs:string list -> outputs:string list -> unit -> t

val add_clock : t -> string -> unit
(** Declares a clock (initially 0, advancing one unit per step). *)

val add_state :
  t ->
  ?parent:string ->
  ?initial:bool ->
  ?idle:bool ->
  ?invariant:clock_constraint list ->
  string ->
  unit
(** Declares a state with its simple name; its full path is
    [parent_path::name].  [initial] marks the initial child of its parent
    (or the chart's initial root state).  [idle] (default [false]) lets the
    configuration dwell with an [∅/∅] delay step while [invariant] holds.
    Raises [Invalid_argument] on duplicate paths or unknown parents. *)

val add_transition :
  t ->
  src:string ->
  ?trigger:string list ->
  ?effect:string list ->
  ?guard:clock_constraint list ->
  ?resets:string list ->
  ?delay:int * int ->
  ?urgent:bool ->
  dst:string ->
  unit ->
  unit
(** [src]/[dst] are full paths; a composite [src] fires from every descendant
    leaf (outer transitions, statechart-style); a composite [dst] enters its
    initial child recursively.  [trigger] are consumed input signals,
    [effect] produced output signals — both within the same discrete step
    (synchronous communication).

    [delay:(l, u)] gives the transition the I/O-interval-structure timing of
    the paper's reference model (Ruf's RAVEN, cited as the target of the
    RTSC mapping): it may only fire between [l] and [u] time units after the
    source state was entered.  Realised by an implicit per-source dwell
    clock, reset on every entry into the source.  With [urgent:true] the
    source additionally may not dwell beyond [u] (an implicit invariant),
    forcing the transition window.  Raises [Invalid_argument] for [l < 0],
    [u < l], a composite [src], or [urgent] without [delay]. *)

val flatten : ?label_prefix:string -> t -> Mechaml_ts.Automaton.t
(** Explicit-state flattening restricted to reachable configurations.
    Configuration names are the leaf path, suffixed with the clock valuation
    ([…\[x=2\]]) when clocks exist.  Labels: every ancestor path of the leaf,
    prefixed with [label_prefix] (default ["" ]).  Clock values saturate at
    one past the largest constant they are compared against.  Raises
    [Invalid_argument] when no initial root state was declared. *)

val leaf_paths : t -> string list
(** All declared leaf state paths (testing/statistics). *)
