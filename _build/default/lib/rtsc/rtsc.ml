module Automaton = Mechaml_ts.Automaton

type cmp = Lt | Le | Eq | Ge | Gt

type clock_constraint = string * cmp * int

type state_def = {
  path : string;
  parent : string option;
  mutable children : string list;
  mutable initial_child : string option;
  idle : bool;
  invariant : clock_constraint list;
}

type trans_def = {
  t_src : string;
  trigger : string list;
  effect : string list;
  guard : clock_constraint list;
  resets : string list;
  delay : (int * int) option;
  urgent : bool;
  t_dst : string;
}

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  states : (string, state_def) Hashtbl.t;
  mutable order : string list; (* reverse declaration order *)
  mutable clocks : string list; (* reverse declaration order *)
  mutable root_initial : string option;
  mutable transitions : trans_def list; (* reverse declaration order *)
}

let create ~name ~inputs ~outputs () =
  {
    name;
    inputs;
    outputs;
    states = Hashtbl.create 16;
    order = [];
    clocks = [];
    root_initial = None;
    transitions = [];
  }

let add_clock t c =
  if List.mem c t.clocks then invalid_arg (Printf.sprintf "Rtsc.add_clock: duplicate clock %S" c);
  t.clocks <- c :: t.clocks

let find_state t path =
  match Hashtbl.find_opt t.states path with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Rtsc: unknown state %S in %s" path t.name)

let add_state t ?parent ?(initial = false) ?(idle = false) ?(invariant = []) name =
  if String.length name = 0 then invalid_arg "Rtsc.add_state: empty name";
  let path =
    match parent with
    | None -> name
    | Some p ->
      ignore (find_state t p);
      p ^ "::" ^ name
  in
  if Hashtbl.mem t.states path then
    invalid_arg (Printf.sprintf "Rtsc.add_state: duplicate state %S" path);
  let def = { path; parent; children = []; initial_child = None; idle; invariant } in
  Hashtbl.add t.states path def;
  t.order <- path :: t.order;
  (match parent with
  | None -> if initial then t.root_initial <- Some path
  | Some p ->
    let pd = find_state t p in
    pd.children <- pd.children @ [ path ];
    if initial then pd.initial_child <- Some path)

(* at declaration time: a state is (currently) a leaf when no child has been
   declared under it yet; flatten re-validates *)
let is_leaf_def def _t = def.children = []

let add_transition t ~src ?(trigger = []) ?(effect = []) ?(guard = []) ?(resets = [])
    ?delay ?(urgent = false) ~dst () =
  let src_def = find_state t src in
  ignore (find_state t dst);
  (match delay with
  | Some (l, u) ->
    if l < 0 || u < l then invalid_arg "Rtsc.add_transition: invalid delay interval";
    if not (is_leaf_def src_def t) then
      invalid_arg "Rtsc.add_transition: delayed transitions need a leaf source"
  | None -> if urgent then invalid_arg "Rtsc.add_transition: urgent requires a delay");
  List.iter
    (fun s ->
      if not (List.mem s t.inputs) then
        invalid_arg (Printf.sprintf "Rtsc.add_transition: unknown input signal %S" s))
    trigger;
  List.iter
    (fun s ->
      if not (List.mem s t.outputs) then
        invalid_arg (Printf.sprintf "Rtsc.add_transition: unknown output signal %S" s))
    effect;
  List.iter
    (fun c ->
      if not (List.mem c t.clocks) then
        invalid_arg (Printf.sprintf "Rtsc.add_transition: unknown clock %S" c))
    (resets @ List.map (fun (c, _, _) -> c) guard);
  t.transitions <-
    { t_src = src; trigger; effect; guard; resets; delay; urgent; t_dst = dst } :: t.transitions

let is_leaf def = def.children = []

let leaf_paths t =
  List.rev t.order |> List.filter (fun p -> is_leaf (find_state t p))

(* Descend through initial children until a leaf. *)
let rec enter t path =
  let def = find_state t path in
  if is_leaf def then path
  else
    match def.initial_child with
    | Some c -> enter t c
    | None -> invalid_arg (Printf.sprintf "Rtsc: composite state %S has no initial child" path)

let rec ancestors t path acc =
  let def = find_state t path in
  match def.parent with None -> path :: acc | Some p -> ancestors t p (path :: acc)

let eval_cmp op v k =
  match op with Lt -> v < k | Le -> v <= k | Eq -> v = k | Ge -> v >= k | Gt -> v > k

let flatten ?(label_prefix = "") t =
  let root_initial =
    match t.root_initial with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Rtsc.flatten: %s has no initial state" t.name)
  in
  (* Expand [l,u]-delayed transitions (the I/O-interval-structure timing)
     into an implicit per-source dwell clock: reset on every entry into the
     source, guarded by l ≤ clock ≤ u, and — for urgent transitions — capped
     by an implicit invariant clock ≤ u on the source. *)
  let raw_transitions = List.rev t.transitions in
  let dwell_clock src = "@" ^ src in
  let delayed_sources =
    List.filter_map
      (fun tr ->
        match tr.delay with
        | Some (_, u) ->
          if not (is_leaf (find_state t tr.t_src)) then
            invalid_arg
              (Printf.sprintf "Rtsc.flatten: delayed transition from composite state %S"
                 tr.t_src);
          Some (tr.t_src, u, tr.urgent)
        | None -> None)
      raw_transitions
    |> List.fold_left
         (fun acc (src, u, urgent) ->
           match List.assoc_opt src acc with
           | Some (u0, urg0) ->
             (src, (max u u0, urg0 || urgent)) :: List.remove_assoc src acc
           | None -> (src, (u, urgent)) :: acc)
         []
  in
  let clocks = List.rev t.clocks @ List.map (fun (src, _) -> dwell_clock src) delayed_sources in
  let transitions =
    List.map
      (fun tr ->
        let guard =
          match tr.delay with
          | Some (l, u) ->
            tr.guard @ [ (dwell_clock tr.t_src, Ge, l); (dwell_clock tr.t_src, Le, u) ]
          | None -> tr.guard
        in
        let entered = enter t tr.t_dst in
        let resets =
          if List.mem_assoc entered delayed_sources then tr.resets @ [ dwell_clock entered ]
          else tr.resets
        in
        { tr with guard; resets })
      raw_transitions
  in
  let implicit_invariant leaf =
    match List.assoc_opt leaf delayed_sources with
    | Some (u, true) -> [ (dwell_clock leaf, Le, u) ]
    | _ -> []
  in
  (* Saturation cap per clock: one past the largest constant it is compared
     against, so the valuation space stays finite without changing any guard
     or invariant outcome. *)
  let cap c =
    let constants =
      List.concat_map
        (fun tr -> List.filter_map (fun (c', _, k) -> if c' = c then Some k else None) tr.guard)
        transitions
      @ (Hashtbl.fold (fun _ def acc -> def.invariant :: acc) t.states []
        |> List.concat
        |> List.filter_map (fun (c', _, k) -> if c' = c then Some k else None))
    in
    1 + List.fold_left max 0 constants
  in
  let caps = List.map cap clocks in
  let lookup_clock valuation c =
    let rec go cs vs =
      match (cs, vs) with
      | c' :: _, v :: _ when c' = c -> v
      | _ :: cs', _ :: vs' -> go cs' vs'
      | _ -> assert false
    in
    go clocks valuation
  in
  let eval valuation constraints =
    List.for_all (fun (c, op, k) -> eval_cmp op (lookup_clock valuation c) k) constraints
  in
  let advance ~resets valuation =
    List.map2
      (fun (c, v) cap -> if List.mem c resets then 0 else min (v + 1) cap)
      (List.combine clocks valuation) caps
  in
  let config_name (leaf, valuation) =
    if clocks = [] then leaf
    else
      leaf ^ "["
      ^ String.concat "," (List.map2 (fun c v -> Printf.sprintf "%s=%d" c v) clocks valuation)
      ^ "]"
  in
  let config_props leaf =
    List.map (fun p -> label_prefix ^ p) (ancestors t leaf [])
  in
  let applicable leaf =
    let ancs = ancestors t leaf [] in
    List.filter (fun tr -> List.mem tr.t_src ancs) transitions
  in
  let invariants_along leaf =
    List.concat_map (fun p -> (find_state t p).invariant) (ancestors t leaf [])
    @ implicit_invariant leaf
  in
  let b = Automaton.Builder.create ~name:t.name ~inputs:t.inputs ~outputs:t.outputs () in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let visit ((leaf, _valuation) as cfg) =
    let name = config_name cfg in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      ignore (Automaton.Builder.add_state b ~props:(config_props leaf) name);
      Queue.add cfg queue
    end;
    name
  in
  let initial_cfg = (enter t root_initial, List.map (fun _ -> 0) clocks) in
  let initial_name = visit initial_cfg in
  while not (Queue.is_empty queue) do
    let ((leaf, valuation) as cfg) = Queue.pop queue in
    let src_name = config_name cfg in
    (* Explicit transitions. *)
    List.iter
      (fun tr ->
        if eval valuation tr.guard then begin
          let leaf' = enter t tr.t_dst in
          let valuation' = advance ~resets:tr.resets valuation in
          let dst_name = visit (leaf', valuation') in
          Automaton.Builder.add_trans b ~src:src_name ~inputs:tr.trigger ~outputs:tr.effect
            ~dst:dst_name ()
        end)
      (applicable leaf);
    (* Implicit delay step while idling is allowed and invariants survive the
       advanced valuation. *)
    let def = find_state t leaf in
    if def.idle then begin
      let valuation' = advance ~resets:[] valuation in
      if eval valuation' (invariants_along leaf) then begin
        let dst_name = visit (leaf, valuation') in
        Automaton.Builder.add_trans b ~src:src_name ~dst:dst_name ()
      end
    end
  done;
  Automaton.Builder.set_initial b [ initial_name ];
  Automaton.Builder.build b
