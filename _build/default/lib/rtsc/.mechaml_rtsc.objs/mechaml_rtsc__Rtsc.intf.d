lib/rtsc/rtsc.mli: Mechaml_ts
