lib/rtsc/rtsc.ml: Hashtbl List Mechaml_ts Printf Queue String
