type error = { position : int; message : string }

type token =
  | Ident of string
  | Int of int
  | Kw_true
  | Kw_false
  | Kw_deadlock
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_until
  | Arrow
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Quant_a (* bare A, as in A (p U q) *)
  | Quant_e
  | Tmp of [ `Ax | `Ex | `Af | `Ef | `Ag | `Eg ]
  | Eof

exception Error of error

let fail position message = raise (Error { position; message })

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '.' || c = ':'

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit pos t = toks := (pos, t) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit pos Lparen; incr i)
    else if c = ')' then (emit pos Rparen; incr i)
    else if c = ',' then (emit pos Comma; incr i)
    else if c = ']' then (emit pos Rbracket; incr i)
    else if c = '[' then
      (* Distinguish "A[] p" (handled at the A/E token) from bounds "[1,5]" —
         here a bare '[' always opens bounds; "[]" directly after A/E is
         consumed when lexing the quantifier. *)
      (emit pos Lbracket; incr i)
    else if c = '!' then (emit pos Kw_not; incr i)
    else if c = '&' then begin
      if !i + 1 < n && s.[!i + 1] = '&' then (emit pos Kw_and; i := !i + 2)
      else (emit pos Kw_and; incr i)
    end
    else if c = '|' then begin
      if !i + 1 < n && s.[!i + 1] = '|' then (emit pos Kw_or; i := !i + 2)
      else (emit pos Kw_or; incr i)
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then (emit pos Arrow; i := !i + 2)
    else if c = '=' && !i + 1 < n && s.[!i + 1] = '>' then (emit pos Arrow; i := !i + 2)
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do incr j done;
      emit pos (Int (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      let quant_suffix () =
        (* A[] / A<> / E[] / E<> *)
        if !i + 1 < n && s.[!i] = '[' && s.[!i + 1] = ']' then begin
          i := !i + 2;
          Some `Box
        end
        else if !i + 1 < n && s.[!i] = '<' && s.[!i + 1] = '>' then begin
          i := !i + 2;
          Some `Diamond
        end
        else None
      in
      let tok =
        match word with
        | "true" -> Kw_true
        | "false" -> Kw_false
        | "deadlock" | "delta" -> Kw_deadlock
        | "not" -> Kw_not
        | "and" -> Kw_and
        | "or" -> Kw_or
        | "U" -> Kw_until
        | "AX" -> Tmp `Ax
        | "EX" -> Tmp `Ex
        | "AF" -> Tmp `Af
        | "EF" -> Tmp `Ef
        | "AG" -> Tmp `Ag
        | "EG" -> Tmp `Eg
        | "A" -> (
          match quant_suffix () with
          | Some `Box -> Tmp `Ag
          | Some `Diamond -> Tmp `Af
          | None -> Quant_a)
        | "E" -> (
          match quant_suffix () with
          | Some `Box -> Tmp `Eg
          | Some `Diamond -> Tmp `Ef
          | None -> Quant_e)
        | w -> Ident w
      in
      emit pos tok
    end
    else fail pos (Printf.sprintf "unexpected character %C" c)
  done;
  emit n Eof;
  List.rev !toks

type stream = { mutable toks : (int * token) list }

let peek st = match st.toks with [] -> (0, Eof) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg =
  let pos, t = peek st in
  if t = tok then advance st else fail pos msg

let parse_bounds st =
  match peek st with
  | _, Lbracket ->
    advance st;
    let lo =
      match peek st with
      | _, Int k -> advance st; k
      | pos, _ -> fail pos "expected lower bound"
    in
    expect st Comma "expected ',' in bounds";
    let hi =
      match peek st with
      | _, Int k -> advance st; k
      | pos, _ -> fail pos "expected upper bound"
    in
    expect st Rbracket "expected ']' closing bounds";
    (try Some (Ctl.bounds lo hi)
     with Invalid_argument m -> fail 0 m)
  | _ -> None

let rec parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | _, Arrow ->
    advance st;
    let rhs = parse_implies st in
    Ctl.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec loop acc =
    match peek st with
    | _, Kw_or ->
      advance st;
      loop (Ctl.Or (acc, parse_and st))
    | _ -> acc
  in
  loop lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec loop acc =
    match peek st with
    | _, Kw_and ->
      advance st;
      loop (Ctl.And (acc, parse_unary st))
    | _ -> acc
  in
  loop lhs

and parse_unary st =
  match peek st with
  | _, Kw_not ->
    advance st;
    Ctl.Not (parse_unary st)
  | _, Tmp op ->
    advance st;
    let b = parse_bounds st in
    let f = parse_unary st in
    (match op with
    | `Ax ->
      if b <> None then fail 0 "AX does not take bounds";
      Ctl.Ax f
    | `Ex ->
      if b <> None then fail 0 "EX does not take bounds";
      Ctl.Ex f
    | `Af -> Ctl.Af (b, f)
    | `Ef -> Ctl.Ef (b, f)
    | `Ag -> Ctl.Ag (b, f)
    | `Eg -> Ctl.Eg (b, f))
  | _, Quant_a ->
    advance st;
    parse_until st ~universal:true
  | _, Quant_e ->
    advance st;
    parse_until st ~universal:false
  | _ -> parse_atom st

and parse_until st ~universal =
  let b = parse_bounds st in
  let pos, _ = peek st in
  expect st Lparen "expected '(' after path quantifier";
  let f = parse_implies st in
  (match peek st with
  | _, Kw_until -> advance st
  | p, _ -> fail p "expected 'U' in until formula");
  let g = parse_implies st in
  expect st Rparen "expected ')' closing until formula";
  ignore pos;
  if universal then Ctl.Au (b, f, g) else Ctl.Eu (b, f, g)

and parse_atom st =
  match peek st with
  | _, Kw_true -> advance st; Ctl.True
  | _, Kw_false -> advance st; Ctl.False
  | _, Kw_deadlock -> advance st; Ctl.Deadlock
  | _, Ident p -> advance st; Ctl.Prop p
  | _, Lparen ->
    advance st;
    let f = parse_implies st in
    expect st Rparen "expected ')'";
    f
  | pos, _ -> fail pos "expected a formula"

let parse s =
  match
    let st = { toks = tokenize s } in
    let f = parse_implies st in
    (match peek st with
    | _, Eof -> ()
    | pos, _ -> fail pos "trailing input after formula");
    f
  with
  | f -> Ok f
  | exception Error e -> Stdlib.Error e

let parse_exn s =
  match parse s with
  | Ok f -> f
  | Error { position; message } ->
    invalid_arg (Printf.sprintf "Ctl parse error at %d: %s" position message)
