(** Clocked CTL (CCTL) constraints and invariants (Section 2.1).

    Properties are specified over the shared set of atomic propositions [P].
    Time bounds on the temporal operators count discrete time units — one per
    transition (Definition 1).  The special symbol [δ] ({!Deadlock}) holds in
    states without any outgoing transition, so [¬δ] as a global invariant
    (written [AG (Not Deadlock)]) expresses deadlock freedom. *)

type bounds = { lo : int; hi : int }
(** Inclusive discrete-time interval [\[lo, hi\]] with [0 ≤ lo ≤ hi]. *)

type t =
  | True
  | False
  | Prop of string
  | Deadlock  (** [δ]: the current state has no outgoing transition *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Ax of t
  | Ex of t
  | Af of bounds option * t
  | Ef of bounds option * t
  | Ag of bounds option * t
  | Eg of bounds option * t
  | Au of bounds option * t * t  (** [A(φ U ψ)] *)
  | Eu of bounds option * t * t

val bounds : int -> int -> bounds
(** Raises [Invalid_argument] unless [0 ≤ lo ≤ hi]. *)

val ag : t -> t
(** Unbounded [AG]. *)

val af : t -> t

val not_ : t -> t

val ( &&& ) : t -> t -> t

val ( ||| ) : t -> t -> t

val prop : string -> t

val deadlock_free : t
(** [AG ¬δ]. *)

val max_delay : trigger:string -> target:string -> int -> t
(** The paper's canonical compositional constraint
    [AG(¬p₁ ∨ AF_{\[1,d\]} p₂)] for a maximal delay [d]. *)

val props : t -> string list
(** [L(φ)]: the atomic propositions occurring in the formula, sorted. *)

val nnf : t -> t
(** Negation normal form: negations pushed onto propositions and [δ];
    [Implies] eliminated.  Temporal operators dualize ([¬AGφ ≡ EF¬φ], bounds
    preserved). *)

val is_actl : t -> bool
(** [true] iff the NNF contains only [A]-quantified operators — the timed
    ACTL subset used for pattern constraints and role invariants. *)

val is_compositional : t -> bool
(** Conservative syntactic check for Definition 5: ACTL formulas (which are
    preserved by refinement and by composition with disjointly labelled
    automata) qualify, as does deadlock freedom.  [δ] may only occur
    negatively. *)

val weaken_for_chaos : chaos_prop:string -> t -> t
(** The Section 2.7 trick: in NNF, replace every literal [p] by
    [p ∨ chaos_prop] and [¬p] by [¬p ∨ chaos_prop], so the chaotic states
    (labelled [chaos_prop]) satisfy every proposition positively and
    negatively without duplicating them per proposition subset. *)

val size : t -> int
(** Node count, used by benchmark reporting. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Concrete syntax accepted by {!Parser.parse}. *)

val to_string : t -> string
