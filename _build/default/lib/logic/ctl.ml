type bounds = { lo : int; hi : int }

type t =
  | True
  | False
  | Prop of string
  | Deadlock
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Ax of t
  | Ex of t
  | Af of bounds option * t
  | Ef of bounds option * t
  | Ag of bounds option * t
  | Eg of bounds option * t
  | Au of bounds option * t * t
  | Eu of bounds option * t * t

let bounds lo hi =
  if lo < 0 || hi < lo then
    invalid_arg (Printf.sprintf "Ctl.bounds: invalid interval [%d, %d]" lo hi);
  { lo; hi }

let ag f = Ag (None, f)

let af f = Af (None, f)

let not_ f = Not f

let ( &&& ) a b = And (a, b)

let ( ||| ) a b = Or (a, b)

let prop p = Prop p

let deadlock_free = Ag (None, Not Deadlock)

let max_delay ~trigger ~target d =
  Ag (None, Or (Not (Prop trigger), Af (Some (bounds 1 d), Prop target)))

let props f =
  let rec go acc = function
    | True | False | Deadlock -> acc
    | Prop p -> p :: acc
    | Not f | Ax f | Ex f | Af (_, f) | Ef (_, f) | Ag (_, f) | Eg (_, f) -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | Au (_, a, b) | Eu (_, a, b) ->
      go (go acc a) b
  in
  List.sort_uniq compare (go [] f)

let rec nnf = function
  | (True | False | Prop _ | Deadlock) as f -> f
  | Not f -> neg f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (neg a, nnf b)
  | Ax f -> Ax (nnf f)
  | Ex f -> Ex (nnf f)
  | Af (b, f) -> Af (b, nnf f)
  | Ef (b, f) -> Ef (b, nnf f)
  | Ag (b, f) -> Ag (b, nnf f)
  | Eg (b, f) -> Eg (b, nnf f)
  | Au (b, f, g) -> Au (b, nnf f, nnf g)
  | Eu (b, f, g) -> Eu (b, nnf f, nnf g)

and neg = function
  | True -> False
  | False -> True
  | (Prop _ | Deadlock) as f -> Not f
  | Not f -> nnf f
  | And (a, b) -> Or (neg a, neg b)
  | Or (a, b) -> And (neg a, neg b)
  | Implies (a, b) -> And (nnf a, neg b)
  | Ax f -> Ex (neg f)
  | Ex f -> Ax (neg f)
  | Af (b, f) -> Eg (b, neg f)
  | Ef (b, f) -> Ag (b, neg f)
  | Ag (b, f) -> Ef (b, neg f)
  | Eg (b, f) -> Af (b, neg f)
  (* ¬(φ U ψ) duals: release.  The release operator is expressed through the
     available connectives: A¬(φUψ) = ¬E(φUψ); we keep these as negated
     untils, which stay correct but leave the formula outside NNF proper.
     The model checker handles them directly, and the ACTL classifier treats
     a negated E-until as universal. *)
  | Au (b, f, g) -> Not (Au (b, nnf f, nnf g))
  | Eu (b, f, g) -> Not (Eu (b, nnf f, nnf g))

let rec is_actl_nnf = function
  | True | False | Prop _ | Deadlock | Not (Prop _) | Not Deadlock -> true
  | Not (Eu (_, f, g)) -> is_actl_nnf (nnf (Not f)) && is_actl_nnf (nnf (Not g))
  | Not _ -> false
  | And (a, b) | Or (a, b) -> is_actl_nnf a && is_actl_nnf b
  | Implies _ -> false
  | Ax f | Af (_, f) | Ag (_, f) -> is_actl_nnf f
  | Au (_, f, g) -> is_actl_nnf f && is_actl_nnf g
  | Ex _ | Ef (_, _) | Eg (_, _) | Eu (_, _, _) -> false

let is_actl f = is_actl_nnf (nnf f)

let rec deadlock_polarity_ok = function
  (* δ must occur only under an odd number of negations (i.e. as ¬δ) for the
     formula to be preserved when composition removes behaviour. *)
  | Deadlock -> false
  | Not Deadlock -> true
  | True | False | Prop _ | Not (Prop _) -> true
  | Not f -> deadlock_polarity_ok (nnf (Not f)) || not (mentions_deadlock f)
  | And (a, b) | Or (a, b) | Implies (a, b) | Au (_, a, b) | Eu (_, a, b) ->
    deadlock_polarity_ok a && deadlock_polarity_ok b
  | Ax f | Ex f | Af (_, f) | Ef (_, f) | Ag (_, f) | Eg (_, f) -> deadlock_polarity_ok f

and mentions_deadlock = function
  | Deadlock -> true
  | True | False | Prop _ -> false
  | Not f | Ax f | Ex f | Af (_, f) | Ef (_, f) | Ag (_, f) | Eg (_, f) -> mentions_deadlock f
  | And (a, b) | Or (a, b) | Implies (a, b) | Au (_, a, b) | Eu (_, a, b) ->
    mentions_deadlock a || mentions_deadlock b

let is_compositional f =
  let f' = nnf f in
  is_actl_nnf f' && deadlock_polarity_ok f'

let weaken_for_chaos ~chaos_prop f =
  let c = Prop chaos_prop in
  let rec go = function
    | True -> True
    | False -> False
    | Prop p -> Or (Prop p, c)
    | Not (Prop p) -> Or (Not (Prop p), c)
    | Deadlock -> Deadlock
    | Not Deadlock -> Not Deadlock
    | Not f -> Not (go f)
    | And (a, b) -> And (go a, go b)
    | Or (a, b) -> Or (go a, go b)
    | Implies (a, b) -> Implies (go a, go b)
    | Ax f -> Ax (go f)
    | Ex f -> Ex (go f)
    | Af (b, f) -> Af (b, go f)
    | Ef (b, f) -> Ef (b, go f)
    | Ag (b, f) -> Ag (b, go f)
    | Eg (b, f) -> Eg (b, go f)
    | Au (b, f, g) -> Au (b, go f, go g)
    | Eu (b, f, g) -> Eu (b, go f, go g)
  in
  go (nnf f)

let rec size = function
  | True | False | Prop _ | Deadlock -> 1
  | Not f | Ax f | Ex f | Af (_, f) | Ef (_, f) | Ag (_, f) | Eg (_, f) -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Au (_, a, b) | Eu (_, a, b) ->
    1 + size a + size b

let equal (a : t) (b : t) = a = b

let pp_bounds ppf = function
  | None -> ()
  | Some { lo; hi } -> Format.fprintf ppf "[%d,%d]" lo hi

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Prop p -> Format.pp_print_string ppf p
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Not f -> Format.fprintf ppf "not %a" pp_atomish f
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_atomish a pp_atomish b
  | Or (a, b) -> Format.fprintf ppf "%a or %a" pp_atomish a pp_atomish b
  | Implies (a, b) -> Format.fprintf ppf "%a -> %a" pp_atomish a pp_atomish b
  | Ax f -> Format.fprintf ppf "AX %a" pp_atomish f
  | Ex f -> Format.fprintf ppf "EX %a" pp_atomish f
  | Af (b, f) -> Format.fprintf ppf "AF%a %a" pp_bounds b pp_atomish f
  | Ef (b, f) -> Format.fprintf ppf "EF%a %a" pp_bounds b pp_atomish f
  | Ag (b, f) -> Format.fprintf ppf "AG%a %a" pp_bounds b pp_atomish f
  | Eg (b, f) -> Format.fprintf ppf "EG%a %a" pp_bounds b pp_atomish f
  | Au (b, f, g) -> Format.fprintf ppf "A%a (%a U %a)" pp_bounds b pp f pp g
  | Eu (b, f, g) -> Format.fprintf ppf "E%a (%a U %a)" pp_bounds b pp f pp g

and pp_atomish ppf f =
  match f with
  | True | False | Prop _ | Deadlock -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
