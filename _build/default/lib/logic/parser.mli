(** Concrete syntax for CCTL formulas.

    Grammar (precedence low → high): implication [->] (right-assoc),
    [or]/[||], [and]/[&&], unary.  Unary operators: [not]/[!], [AX], [EX],
    [AF], [EF], [AG], [EG], each optionally bounded as in [AF[1,5] p];
    UPPAAL-style [A[] p], [A<> p], [E[] p], [E<> p] are accepted as synonyms
    for [AG]/[AF]/[EG]/[EF].  Until: [A (p U q)], [E[2,7] (p U q)].  Atoms:
    [true], [false], [deadlock], parenthesised formulas and proposition names
    (letters, digits, [_], [.], [:]), e.g. [frontRole.noConvoy] or
    [noConvoy::default].

    Example from the paper: [AG (not (rearRole.convoy and frontRole.noConvoy))]. *)

type error = { position : int; message : string }

val parse : string -> (Ctl.t, error) Stdlib.result

val parse_exn : string -> Ctl.t
(** Raises [Invalid_argument] with a located message. *)
