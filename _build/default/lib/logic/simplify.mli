(** Semantics-preserving simplification of CCTL formulas.

    The chaos-weakening rewrite (Section 2.7) and mechanical formula
    construction leave redundancy behind ([φ ∨ φ], constants, double
    negations); simplification keeps the checker's memo table small and the
    printed obligations readable.

    All rules are sound for the maximal-run semantics of {!Mechaml_mc.Sat} —
    in particular, {e bounded} eventualities over [true] are {b not} folded
    ([AF\[2,3\] true] fails at blocking states), while the unbounded
    tautologies are ([AG true ≡ true], [EX true ≡ ¬δ], [AX false ≡ δ]). *)

val simplify : Ctl.t -> Ctl.t
(** Bottom-up constant folding, double-negation elimination, idempotence
    ([φ ∧ φ ≡ φ]), absorption of neutral elements, and the unbounded
    temporal tautologies.  Idempotent. *)
