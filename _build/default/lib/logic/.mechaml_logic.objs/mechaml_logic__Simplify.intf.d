lib/logic/simplify.mli: Ctl
