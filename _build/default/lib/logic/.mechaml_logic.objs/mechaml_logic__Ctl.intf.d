lib/logic/ctl.mli: Format
