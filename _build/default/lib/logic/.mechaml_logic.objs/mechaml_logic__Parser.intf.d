lib/logic/parser.mli: Ctl Stdlib
