lib/logic/simplify.ml: Ctl
