lib/logic/ctl.ml: Format List Printf
