lib/logic/parser.ml: Ctl List Printf Stdlib String
