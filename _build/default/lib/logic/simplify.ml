open Ctl

let rec simplify (f : t) : t =
  match f with
  | True | False | Prop _ | Deadlock -> f
  | Not g -> (
    match simplify g with
    | True -> False
    | False -> True
    | Not h -> h
    | g' -> Not g')
  | And (a, b) -> (
    match (simplify a, simplify b) with
    | False, _ | _, False -> False
    | True, x | x, True -> x
    | x, y when equal x y -> x
    | x, y -> And (x, y))
  | Or (a, b) -> (
    match (simplify a, simplify b) with
    | True, _ | _, True -> True
    | False, x | x, False -> x
    | x, y when equal x y -> x
    | x, y -> Or (x, y))
  | Implies (a, b) -> (
    match (simplify a, simplify b) with
    | False, _ -> True
    | True, y -> y
    | _, True -> True
    | x, y when equal x y -> True
    | x, y -> Implies (x, y))
  | Ax g -> (
    match simplify g with
    | True -> True
    (* no successor at all: the deadlock proposition *)
    | False -> Deadlock
    | g' -> Ax g')
  | Ex g -> (
    match simplify g with
    | False -> False
    (* some successor exists: exactly ¬δ *)
    | True -> Not Deadlock
    | g' -> Ex g')
  | Af (None, g) -> (
    match simplify g with True -> True | False -> False | g' -> Af (None, g'))
  | Ef (None, g) -> (
    match simplify g with True -> True | False -> False | g' -> Ef (None, g'))
  | Ag (None, g) -> (
    match simplify g with True -> True | False -> False | g' -> Ag (None, g'))
  | Eg (None, g) -> (
    match simplify g with True -> True | False -> False | g' -> Eg (None, g'))
  (* bounded operators interact with run length: only fold what stays sound
     over maximal runs that may end inside the window *)
  | Af (Some b, g) -> (
    match simplify g with False -> False | g' -> Af (Some b, g'))
  | Ef (Some b, g) -> (
    match simplify g with False -> False | g' -> Ef (Some b, g'))
  | Ag (Some b, g) -> (
    match simplify g with True -> True | g' -> Ag (Some b, g'))
  | Eg (Some b, g) -> (
    match simplify g with True -> True | g' -> Eg (Some b, g'))
  | Au (b, p, q) -> (
    match (b, simplify p, simplify q) with
    | _, _, False -> False
    | None, _, True -> True
    | b', p', q' -> Au (b', p', q'))
  | Eu (b, p, q) -> (
    match (b, simplify p, simplify q) with
    | _, _, False -> False
    | None, _, True -> True
    | b', p', q' -> Eu (b', p', q'))
