(** System assembly: component instances wired port-to-port.

    The composition of Definition 3 matches signals by name; an assembly
    takes care of the naming.  Every instance's signals are qualified with
    the instance name ([shuttle1.convoyProposal]); {!connect} joins one
    instance's output to another instance's input under a shared wire name,
    so the synchronous composition links exactly the declared pairs and
    leaves everything else as environment-facing signals.

    Wires are point-to-point — one producer, one consumer — because the
    composition's input alphabets must stay disjoint (Definition 3);
    broadcast is modelled with an explicit replicator component. *)

type t

val create : unit -> t

val add_instance : t -> name:string -> Mechaml_ts.Automaton.t -> unit
(** Raises [Invalid_argument] on duplicate instance names.  When instances
    share proposition names, their labels are qualified with
    ["<instance>:"] to keep the composed labelling unambiguous; instances
    whose propositions are already unique keep them as-is. *)

val connect :
  t -> from_:string * string -> to_:string * string -> unit
(** [connect t ~from_:(a, sig_out) ~to_:(b, sig_in)] wires instance [a]'s
    output [sig_out] to instance [b]'s input [sig_in].  Raises
    [Invalid_argument] on unknown instances/signals, on direction mismatch,
    or when either endpoint is already wired. *)

val build : t -> Mechaml_ts.Automaton.t
(** The synchronous composition of all instances with the declared wiring.
    Unconnected signals appear qualified ([instance.signal]); wires appear
    as [a.sig_out>b.sig_in].  Raises [Invalid_argument] when fewer than one
    instance was added. *)

val wire_name : from_:string * string -> to_:string * string -> string
(** The name a wire's signal carries in the built automaton. *)
