lib/muml/role.mli: Mechaml_logic Mechaml_mc Mechaml_rtsc Mechaml_ts
