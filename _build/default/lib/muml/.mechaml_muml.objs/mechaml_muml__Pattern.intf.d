lib/muml/pattern.mli: Mechaml_logic Mechaml_mc Mechaml_ts Role
