lib/muml/connector.mli: Mechaml_ts
