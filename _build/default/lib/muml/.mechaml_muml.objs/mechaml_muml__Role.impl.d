lib/muml/role.ml: Mechaml_logic Mechaml_mc Mechaml_rtsc
