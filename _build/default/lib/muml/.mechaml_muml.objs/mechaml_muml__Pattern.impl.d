lib/muml/pattern.ml: List Mechaml_logic Mechaml_mc Mechaml_ts Option Printf Role
