lib/muml/assembly.mli: Mechaml_ts
