lib/muml/assembly.ml: List Mechaml_ts Mechaml_util Printf
