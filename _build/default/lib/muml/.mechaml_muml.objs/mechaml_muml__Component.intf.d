lib/muml/component.mli: Mechaml_ts Role
