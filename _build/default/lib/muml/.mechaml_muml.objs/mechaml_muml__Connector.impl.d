lib/muml/connector.ml: Hashtbl List Mechaml_ts Queue String
