lib/muml/component.ml: List Mechaml_ts Printf Role
