(** Connectors: explicit channel automata modelling delay and reliability of
    the links between roles (Section "Modeling" — "the behavior of the
    connector is described by another real-time statechart that is used to
    model channel delay and reliability").

    A channel carries at most one message per direction slot per time unit.
    Each route maps an input signal (produced by the sender) to an output
    signal (consumed by the receiver); distinct names keep the composition
    alphabets disjoint.  With [delay = d], a message received in period [k]
    is delivered in period [k + d].  A lossy channel non-deterministically
    drops messages instead of en-queueing them. *)

val channel :
  name:string ->
  ?delay:int ->
  ?lossy:bool ->
  routes:(string * string) list ->
  unit ->
  Mechaml_ts.Automaton.t
(** Raises [Invalid_argument] when [delay < 1], routes are empty or
    duplicated, or the buffer state space would exceed [10_000]
    configurations. *)
