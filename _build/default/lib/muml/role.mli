(** Roles of a coordination pattern (Section "Modeling").

    A role's communication behaviour is a real-time statechart; its
    guaranteed behaviour can be restricted by a role invariant in timed ACTL.
    The flattened automaton labels every configuration with the (prefixed)
    hierarchical state names, which is what the pattern constraint and role
    invariants predicate over. *)

type t = {
  name : string;
  behavior : Mechaml_rtsc.Rtsc.t;
  invariant : Mechaml_logic.Ctl.t option;
}

val make : name:string -> behavior:Mechaml_rtsc.Rtsc.t -> ?invariant:Mechaml_logic.Ctl.t -> unit -> t

val automaton : t -> Mechaml_ts.Automaton.t
(** Flattened with label prefix ["<name>."], e.g. [frontRole.noConvoy]. *)

val check_invariant : t -> Mechaml_mc.Checker.outcome
(** The role automaton in isolation satisfies its invariant (vacuously
    {!Mechaml_mc.Checker.Holds} when none is declared). *)
