module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose

type wire = { w_from : string * string; w_to : string * string }

type t = {
  mutable instances : (string * Automaton.t) list; (* reverse order *)
  mutable wires : wire list;
}

let create () = { instances = []; wires = [] }

let add_instance t ~name auto =
  if List.mem_assoc name t.instances then
    invalid_arg (Printf.sprintf "Assembly.add_instance: duplicate instance %S" name);
  t.instances <- (name, auto) :: t.instances

let find_instance t name =
  match List.assoc_opt name t.instances with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Assembly: unknown instance %S" name)

let wire_name ~from_:(a, sig_out) ~to_:(b, sig_in) =
  Printf.sprintf "%s.%s>%s.%s" a sig_out b sig_in

let connect t ~from_ ~to_ =
  let a, sig_out = from_ and b, sig_in = to_ in
  let producer = find_instance t a and consumer = find_instance t b in
  if not (Universe.mem producer.Automaton.outputs sig_out) then
    invalid_arg (Printf.sprintf "Assembly.connect: %s has no output %S" a sig_out);
  if not (Universe.mem consumer.Automaton.inputs sig_in) then
    invalid_arg (Printf.sprintf "Assembly.connect: %s has no input %S" b sig_in);
  List.iter
    (fun w ->
      if w.w_from = from_ then
        invalid_arg (Printf.sprintf "Assembly.connect: output %s.%s already wired" a sig_out);
      if w.w_to = to_ then
        invalid_arg (Printf.sprintf "Assembly.connect: input %s.%s already wired" b sig_in))
    t.wires;
  t.wires <- { w_from = from_; w_to = to_ } :: t.wires

let build t =
  match List.rev t.instances with
  | [] -> invalid_arg "Assembly.build: no instances"
  | instances ->
    (* Rename every signal: wired endpoints share the wire's name, the rest
       are qualified with the instance name. *)
    let rename_of name =
      let input s =
        match List.find_opt (fun w -> w.w_to = (name, s)) t.wires with
        | Some w -> wire_name ~from_:w.w_from ~to_:w.w_to
        | None -> name ^ "." ^ s
      in
      let output s =
        match List.find_opt (fun w -> w.w_from = (name, s)) t.wires with
        | Some w -> wire_name ~from_:w.w_from ~to_:w.w_to
        | None -> name ^ "." ^ s
      in
      (input, output)
    in
    (* Qualify propositions only where they would collide across instances. *)
    let all_props =
      List.concat_map
        (fun (_, a) -> Universe.to_list a.Automaton.props)
        instances
    in
    let colliding p = List.length (List.filter (( = ) p) all_props) > 1 in
    let prepare (name, auto) =
      let input, output = rename_of name in
      let auto = Automaton.map_signals auto ~inputs:input ~outputs:output in
      let needs_qualification =
        List.exists colliding (Universe.to_list auto.Automaton.props)
      in
      if not needs_qualification then auto
      else begin
        let props =
          Universe.of_list
            (List.map (fun p -> name ^ ":" ^ p) (Universe.to_list auto.Automaton.props))
        in
        Automaton.relabel auto ~props (fun s ->
            Mechaml_util.Bitset.to_int (Automaton.label auto s) |> Mechaml_util.Bitset.of_int_unsafe)
      end
    in
    Compose.parallel_many (List.map prepare instances)
