module Rtsc = Mechaml_rtsc.Rtsc
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker

type t = { name : string; behavior : Rtsc.t; invariant : Ctl.t option }

let make ~name ~behavior ?invariant () = { name; behavior; invariant }

let automaton t = Rtsc.flatten ~label_prefix:(t.name ^ ".") t.behavior

let check_invariant t =
  match t.invariant with
  | None -> Checker.Holds
  | Some phi -> Checker.check (automaton t) phi
