module Automaton = Mechaml_ts.Automaton

let channel ~name ?(delay = 1) ?(lossy = false) ~routes () =
  if delay < 1 then invalid_arg "Connector.channel: delay must be at least 1";
  if routes = [] then invalid_arg "Connector.channel: no routes";
  let ins = List.map fst routes and outs = List.map snd routes in
  if
    List.length (List.sort_uniq compare ins) <> List.length ins
    || List.length (List.sort_uniq compare outs) <> List.length outs
  then invalid_arg "Connector.channel: duplicate route signals";
  let r = List.length routes in
  let state_space = int_of_float ((float_of_int (r + 1)) ** float_of_int delay) in
  if state_space > 10_000 then
    invalid_arg "Connector.channel: buffer state space exceeds 10_000 configurations";
  (* A buffer is a list of [delay] slots, oldest first; each slot holds a
     route index or nothing. *)
  let slot_name = function None -> "-" | Some i -> fst (List.nth routes i) in
  let buf_name buf = name ^ "[" ^ String.concat "|" (List.map slot_name buf) ^ "]" in
  let b = Automaton.Builder.create ~name ~inputs:ins ~outputs:outs () in
  let seen = Hashtbl.create 32 in
  let queue = Queue.create () in
  let visit buf =
    let n = buf_name buf in
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      ignore (Automaton.Builder.add_state b n);
      Queue.add buf queue
    end;
    n
  in
  let empty_buf = List.init delay (fun _ -> None) in
  let initial = visit empty_buf in
  while not (Queue.is_empty queue) do
    let buf = Queue.pop queue in
    let src = buf_name buf in
    let head = List.hd buf and tail = List.tl buf in
    let outputs = match head with None -> [] | Some i -> [ snd (List.nth routes i) ] in
    let arrivals = None :: List.init r (fun i -> Some i) in
    List.iter
      (fun arrival ->
        let inputs = match arrival with None -> [] | Some i -> [ fst (List.nth routes i) ] in
        let enqueue slot =
          let dst = visit (tail @ [ slot ]) in
          Automaton.Builder.add_trans b ~src ~inputs ~outputs ~dst ()
        in
        enqueue arrival;
        (* A lossy channel may also drop the arriving message. *)
        if lossy && arrival <> None then enqueue None)
      arrivals
  done;
  Automaton.Builder.set_initial b [ initial ];
  Automaton.Builder.build b
