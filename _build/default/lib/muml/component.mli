(** Components and ports (Section "Modeling").

    A component implements one or more pattern roles through its ports; each
    port behaviour must {e refine} the corresponding role statechart — not
    add behaviour, not block guaranteed behaviour (Definition 4) — so that
    the pattern's verified properties carry over (Lemmas 1–3). *)

type t = {
  name : string;
  ports : (string * Mechaml_ts.Automaton.t) list;
      (** (role name, port behaviour) — the port automaton's labels must use
          the role's prefix so invariants transfer *)
}

val make : name:string -> ports:(string * Mechaml_ts.Automaton.t) list -> t

val conforms_to :
  t -> role:Role.t -> Mechaml_ts.Refinement.result
(** Check that the component's port for [role] refines the role's flattened
    statechart.  Raises [Invalid_argument] when the component has no port for
    that role. *)

val behavior : t -> Mechaml_ts.Automaton.t
(** The parallel composition of all port behaviours — the component's
    externally visible behaviour. *)
