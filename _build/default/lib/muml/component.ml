module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Refinement = Mechaml_ts.Refinement

type t = { name : string; ports : (string * Automaton.t) list }

let make ~name ~ports = { name; ports }

let conforms_to t ~(role : Role.t) =
  match List.assoc_opt role.Role.name t.ports with
  | None ->
    invalid_arg (Printf.sprintf "Component.conforms_to: %s has no port for role %S" t.name role.Role.name)
  | Some port -> Refinement.check ~concrete:port ~abstract:(Role.automaton role) ()

let behavior t =
  match t.ports with
  | [] -> invalid_arg "Component.behavior: component has no ports"
  | ports -> Compose.parallel_many (List.map snd ports)
