module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker

type t = {
  name : string;
  roles : Role.t list;
  connector : Automaton.t option;
  constraint_ : Ctl.t;
}

let make ~name ~roles ?connector ~constraint_ () = { name; roles; connector; constraint_ }

let compose_all = function
  | [] -> invalid_arg "Pattern: nothing to compose"
  | autos -> Compose.parallel_many autos

let composition t =
  compose_all (List.map Role.automaton t.roles @ Option.to_list t.connector)

let verify t =
  let invariants = List.filter_map (fun (r : Role.t) -> r.Role.invariant) t.roles in
  Checker.check_conjunction (composition t)
    (Ctl.deadlock_free :: t.constraint_ :: invariants)

let context_for t ~role =
  if not (List.exists (fun (r : Role.t) -> r.Role.name = role) t.roles) then
    invalid_arg (Printf.sprintf "Pattern.context_for: no role %S in %s" role t.name);
  let others = List.filter (fun (r : Role.t) -> r.Role.name <> role) t.roles in
  compose_all (List.map Role.automaton others @ Option.to_list t.connector)
