(** Coordination patterns (Section "Modeling", Fig. 1).

    A pattern consists of roles, an optional connector between them, and a
    pattern constraint in timed ACTL restricting the overall behaviour.
    Constraints, invariants and the known communication partners together are
    the {e context information} the synthesis loop exploits. *)

type t = {
  name : string;
  roles : Role.t list;
  connector : Mechaml_ts.Automaton.t option;
  constraint_ : Mechaml_logic.Ctl.t;
}

val make :
  name:string ->
  roles:Role.t list ->
  ?connector:Mechaml_ts.Automaton.t ->
  constraint_:Mechaml_logic.Ctl.t ->
  unit ->
  t

val composition : t -> Mechaml_ts.Automaton.t
(** All role automata (and the connector, when present) composed in
    parallel. *)

val verify : t -> Mechaml_mc.Checker.outcome
(** Model check the pattern constraint, all role invariants and deadlock
    freedom on the composition — the upfront verification MECHATRONIC UML
    performs before components are built. *)

val context_for : t -> role:string -> Mechaml_ts.Automaton.t
(** The composition of every role {e except} [role] (plus the connector):
    the abstract context [M_a^c] a legacy component implementing [role] is
    integrated against.  Raises [Invalid_argument] for unknown roles. *)
