type instrumentation = Minimal | Full

type outcome = {
  events : Event.t list;
  outputs : string list list;
  states : string list;
  blocked : string list option;
}

let run ~(box : Blackbox.t) ~instrumentation ~inputs =
  let session = box.Blackbox.connect () in
  let full = instrumentation = Full in
  let events = ref [] in
  let emit e = events := e :: !events in
  let message direction name =
    emit (Event.Message { name; port = box.Blackbox.port; direction })
  in
  let rec go period pending outputs_acc states_acc =
    match pending with
    | [] -> (List.rev outputs_acc, List.rev states_acc, None)
    | ins :: rest -> (
      let pre = session.Blackbox.probe_state () in
      match session.Blackbox.step ~inputs:ins with
      | None -> (List.rev outputs_acc, List.rev states_acc, Some ins)
      | Some outs ->
        if full then emit (Event.Current_state { name = pre });
        List.iter (message Event.Outgoing) outs;
        List.iter (message Event.Incoming) ins;
        if full then emit (Event.Timing { count = period });
        go (period + 1) rest (outs :: outputs_acc) (session.Blackbox.probe_state () :: states_acc)
      )
  in
  let initial = session.Blackbox.probe_state () in
  let outputs, states, blocked = go 1 inputs [] [] in
  {
    events = List.rev !events;
    outputs;
    states = (if full then initial :: states else []);
    blocked;
  }

let event_count o = List.length o.events
