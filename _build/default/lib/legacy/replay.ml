type recording = {
  inputs : string list list;
  minimal_events : Event.t list;
  blocked : string list option;
}

let record ~box ~inputs =
  let outcome = Monitor.run ~box ~instrumentation:Monitor.Minimal ~inputs in
  let executed =
    (* Only the periods that actually executed are part of the recording;
       a refused period contributes no events. *)
    List.filteri (fun i _ -> i < List.length outcome.Monitor.outputs) inputs
  in
  { inputs = executed; minimal_events = outcome.Monitor.events; blocked = outcome.Monitor.blocked }

let replay ~box recording =
  let outcome = Monitor.run ~box ~instrumentation:Monitor.Full ~inputs:recording.inputs in
  let replayed = Event.messages outcome.Monitor.events in
  let recorded = Event.messages recording.minimal_events in
  if replayed <> recorded then
    invalid_arg
      (Printf.sprintf
         "Replay.replay: %s diverged from its recording — the component is not deterministic"
         box.Blackbox.name);
  outcome

let observe_full ~box ~inputs =
  let recording = record ~box ~inputs in
  (recording, replay ~box recording)
