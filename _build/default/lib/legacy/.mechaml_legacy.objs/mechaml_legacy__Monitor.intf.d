lib/legacy/monitor.mli: Blackbox Event
