lib/legacy/flaky.ml: Blackbox
