lib/legacy/event.mli: Format
