lib/legacy/observation.mli: Blackbox Format
