lib/legacy/replay.ml: Blackbox Event List Monitor Printf
