lib/legacy/monitor.ml: Blackbox Event List
