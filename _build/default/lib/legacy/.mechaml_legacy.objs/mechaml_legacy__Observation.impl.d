lib/legacy/observation.ml: Blackbox Format List Monitor Replay String
