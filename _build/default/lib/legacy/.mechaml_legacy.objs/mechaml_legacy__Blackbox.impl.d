lib/legacy/blackbox.ml: List Mechaml_ts Mechaml_util Option Printf
