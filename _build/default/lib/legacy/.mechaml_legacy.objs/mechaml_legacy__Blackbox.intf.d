lib/legacy/blackbox.mli: Mechaml_ts
