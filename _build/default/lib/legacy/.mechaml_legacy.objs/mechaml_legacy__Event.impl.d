lib/legacy/event.ml: Format List
