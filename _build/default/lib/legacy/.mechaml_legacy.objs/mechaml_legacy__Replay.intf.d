lib/legacy/replay.mli: Blackbox Event Monitor
