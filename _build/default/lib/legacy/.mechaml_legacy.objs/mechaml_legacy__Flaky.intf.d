lib/legacy/flaky.mli: Blackbox
