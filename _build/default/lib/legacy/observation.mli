(** Structured observations of a legacy component execution — the input to
    the learning step (Section 4.3).

    An observation is the state-enriched trace obtained by deterministic
    replay: one step per executed period carrying the pre-state, the
    interaction and the post-state, optionally terminated by a refused
    interaction (which becomes a deadlock run, Definition 12). *)

type step = {
  pre_state : string;
  inputs : string list;
  outputs : string list;
  post_state : string;
}

type t = {
  initial_state : string;
  steps : step list;
  refused : (string * string list) option;
      (** [(state, inputs)] of the blocked interaction, if the run blocked *)
}

val observe : box:Blackbox.t -> inputs:string list list -> t
(** Record with minimal instrumentation, replay with full instrumentation
    (see {!Replay}), and if the original run blocked, determine the refusal
    against the replayed final state. *)

val length : t -> int

val output_trace : t -> string list list

val pp : Format.formatter -> t -> unit
