(** Monitoring events (Section 5, Listings 1.2–1.5).

    During the recording phase only the events relevant for deterministic
    replay are captured: incoming/outgoing messages and the period in which
    they occurred.  During replay, additional probes — current state and
    timing — are enabled without any probe effect, because the execution is
    driven by the recorded data. *)

type direction = Incoming | Outgoing

type t =
  | Message of { name : string; port : string; direction : direction }
  | Current_state of { name : string }
  | Timing of { count : int }  (** period number *)

val pp : Format.formatter -> t -> unit
(** Renders one event in the paper's listing syntax, e.g.
    [[Message] name="convoyProposal", portName="rearRole", type="outgoing"]. *)

val pp_log : Format.formatter -> t list -> unit
(** One event per line. *)

val to_string : t list -> string

val messages : t list -> (string * direction) list
(** The message events in order, for trace comparison. *)
