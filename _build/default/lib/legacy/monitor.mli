(** Software monitoring of a legacy component under test (Section 5).

    Minimal instrumentation records only what deterministic replay needs —
    the incoming/outgoing messages and their period numbers (Listing 1.2).
    Full instrumentation additionally probes the current state and emits
    timing events (Listing 1.3); on a real target the extra probes would
    perturb timing (the {e probe effect}), which is why they are only enabled
    during replay. *)

type instrumentation = Minimal | Full

type outcome = {
  events : Event.t list;        (** monitoring log in listing order *)
  outputs : string list list;   (** output signal set of each executed period *)
  states : string list;         (** states visited (initial first); [Full] only *)
  blocked : string list option; (** inputs of the refused period, if the run blocked *)
}

val run :
  box:Blackbox.t -> instrumentation:instrumentation -> inputs:string list list -> outcome
(** Connect a fresh session and drive it with one input signal set per
    period, recording events.  Execution stops at the first refused
    interaction. *)

val event_count : outcome -> int
