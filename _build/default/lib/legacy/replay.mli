(** Platform-independent deterministic replay (Section 5, following the
    approach of Giese & Henkler 2006).

    Phase one executes the component with minimal instrumentation, recording
    only the events needed to reproduce the execution: the messages and their
    period numbers.  Phase two re-executes deterministically from the
    recording with additional probes (states, timing) enabled; because the
    replay is driven by the recorded data, the extra instrumentation cannot
    change the behaviour (no probe effect). *)

type recording = {
  inputs : string list list;     (** input signal set per period *)
  minimal_events : Event.t list; (** the Listing 1.2 style log *)
  blocked : string list option;  (** refused inputs, when the run blocked *)
}

val record : box:Blackbox.t -> inputs:string list list -> recording
(** Phase one. *)

val replay : box:Blackbox.t -> recording -> Monitor.outcome
(** Phase two: re-drive the same component from the recording under full
    instrumentation.  Raises [Invalid_argument] if the replayed message
    sequence diverges from the recording — that would mean the component is
    not deterministic, violating the paper's core assumption. *)

val observe_full : box:Blackbox.t -> inputs:string list list -> recording * Monitor.outcome
(** Record then replay. *)
