type direction = Incoming | Outgoing

type t =
  | Message of { name : string; port : string; direction : direction }
  | Current_state of { name : string }
  | Timing of { count : int }

let pp ppf = function
  | Message { name; port; direction } ->
    Format.fprintf ppf "[Message] name=%S, portName=%S, type=%S" name port
      (match direction with Incoming -> "incoming" | Outgoing -> "outgoing")
  | Current_state { name } -> Format.fprintf ppf "[CurrentState] name=%S" name
  | Timing { count } -> Format.fprintf ppf "[Timing] count=%d" count

let pp_log ppf events =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
    events

let to_string events = Format.asprintf "%a" pp_log events

let messages events =
  List.filter_map
    (function Message { name; direction; _ } -> Some (name, direction) | _ -> None)
    events
