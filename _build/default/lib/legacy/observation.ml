type step = {
  pre_state : string;
  inputs : string list;
  outputs : string list;
  post_state : string;
}

type t = {
  initial_state : string;
  steps : step list;
  refused : (string * string list) option;
}

let observe ~box ~inputs =
  let recording, outcome = Replay.observe_full ~box ~inputs in
  let states = outcome.Monitor.states in
  let initial_state = match states with s :: _ -> s | [] -> box.Blackbox.initial_state in
  let rec zip states ins outs acc =
    match (states, ins, outs) with
    | pre :: (post :: _ as rest), i :: ins', o :: outs' ->
      zip rest ins' outs' ({ pre_state = pre; inputs = i; outputs = o; post_state = post } :: acc)
    | _ -> List.rev acc
  in
  let steps = zip states recording.Replay.inputs outcome.Monitor.outputs [] in
  let refused =
    match recording.Replay.blocked with
    | None -> None
    | Some ins ->
      let final =
        match List.rev states with s :: _ -> s | [] -> initial_state
      in
      Some (final, ins)
  in
  { initial_state; steps; refused }

let length o = List.length o.steps

let output_trace o = List.map (fun s -> s.outputs) o.steps

let pp ppf o =
  Format.fprintf ppf "@[<v>start %s@," o.initial_state;
  List.iter
    (fun s ->
      Format.fprintf ppf "%s --{%s}/{%s}--> %s@," s.pre_state
        (String.concat "," s.inputs) (String.concat "," s.outputs) s.post_state)
    o.steps;
  (match o.refused with
  | Some (state, ins) -> Format.fprintf ppf "%s refuses {%s}@," state (String.concat "," ins)
  | None -> ());
  Format.fprintf ppf "@]"
