(** The legacy component as the approach sees it.

    The paper assumes of the legacy component [M_r] only that it is a
    deterministic finite-state component with a known structural interface
    (signal names), a known initial state and a reverse-engineered upper
    bound on its state count (Section 3); that it can be reset and driven
    through its port; and that under deterministic replay its current state
    can be probed (Section 5).  Everything else — its transition structure —
    is hidden behind this interface and must be learned. *)

type session = {
  step : inputs:string list -> string list option;
      (** Execute one period: feed the input signal set, observe the output
          signal set, or [None] when the component refuses the interaction
          (blocks).  A refused interaction does not advance the component. *)
  probe_state : unit -> string;
      (** White-box probe naming the current state.  Only meaningful under
          replay instrumentation; the monitor decides whether to record it. *)
}

type t = {
  name : string;
  port : string;  (** port the component communicates through, e.g. ["rearRole"] *)
  input_signals : string list;
  output_signals : string list;
  initial_state : string;  (** known initial state name (Section 3) *)
  state_bound : int;
      (** reverse-engineered upper bound on the number of relevant states *)
  connect : unit -> session;  (** reset and start a fresh execution *)
}

val of_automaton : ?port:string -> ?state_bound:int -> Mechaml_ts.Automaton.t -> t
(** Wraps a deterministic automaton as a black box with hidden state.  The
    automaton must be input-deterministic and have exactly one initial state
    (the paper's determinism assumption, Section 4.3); raises
    [Invalid_argument] otherwise.  [state_bound] defaults to the automaton's
    state count; [port] defaults to the automaton's name. *)

val signals_consistent : t -> Mechaml_ts.Universe.t -> Mechaml_ts.Universe.t -> bool
(** The black box's structural interface matches the given input/output
    universes (by name, order-independent). *)
