module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe

type session = {
  step : inputs:string list -> string list option;
  probe_state : unit -> string;
}

type t = {
  name : string;
  port : string;
  input_signals : string list;
  output_signals : string list;
  initial_state : string;
  state_bound : int;
  connect : unit -> session;
}

let of_automaton ?port ?state_bound (m : Automaton.t) =
  if not (Automaton.input_deterministic m) then
    invalid_arg
      (Printf.sprintf "Blackbox.of_automaton: %s is not input-deterministic" m.Automaton.name);
  let q0 =
    match m.Automaton.initial with
    | [ q ] -> q
    | _ ->
      invalid_arg
        (Printf.sprintf "Blackbox.of_automaton: %s must have exactly one initial state"
           m.Automaton.name)
  in
  let connect () =
    let current = ref q0 in
    let step ~inputs =
      let a = Universe.set_of_names m.Automaton.inputs inputs in
      match
        List.find_opt
          (fun (t : Automaton.trans) -> Mechaml_util.Bitset.equal t.input a)
          (Automaton.transitions_from m !current)
      with
      | None -> None
      | Some t ->
        current := t.dst;
        Some (Universe.names_of_set m.Automaton.outputs t.output)
    in
    let probe_state () = Automaton.state_name m !current in
    { step; probe_state }
  in
  {
    name = m.Automaton.name;
    port = Option.value port ~default:m.Automaton.name;
    input_signals = Universe.to_list m.Automaton.inputs;
    output_signals = Universe.to_list m.Automaton.outputs;
    initial_state = Automaton.state_name m q0;
    state_bound = Option.value state_bound ~default:(Automaton.num_states m);
    connect;
  }

let signals_consistent t inputs outputs =
  let same names u = List.sort compare names = List.sort compare (Universe.to_list u) in
  same t.input_signals inputs && same t.output_signals outputs
