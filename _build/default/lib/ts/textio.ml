type error = { line : int; message : string }

exception Error of error

let fail line message = raise (Error { line; message })

let tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

type decl = {
  mutable name : string;
  mutable inputs : string list option;
  mutable outputs : string list option;
  mutable initial : string list option;
  mutable states : (string * string list) list; (* reverse order *)
  mutable trans : (string * string list * string list * string) list; (* reverse *)
}

(* trans <src> : <inputs> / <outputs> -> <dst> *)
let parse_trans lineno rest =
  let rec split_at sep acc = function
    | [] -> fail lineno (Printf.sprintf "missing %S in trans line" sep)
    | t :: rest when t = sep -> (List.rev acc, rest)
    | t :: rest -> split_at sep (t :: acc) rest
  in
  match rest with
  | src :: rest ->
    let before_colon, rest = ([ src ], rest) in
    let rest =
      match rest with
      | ":" :: r -> r
      | _ -> fail lineno "expected ':' after the source state"
    in
    let inputs, rest = split_at "/" [] rest in
    let outputs, rest = split_at "->" [] rest in
    (match rest with
    | [ dst ] -> (List.hd before_colon, inputs, outputs, dst)
    | [] -> fail lineno "missing destination state"
    | _ -> fail lineno "trailing tokens after the destination state")
  | [] -> fail lineno "trans needs a source state"

let parse_string ~default_name text =
  let d =
    { name = default_name; inputs = None; outputs = None; initial = None; states = []; trans = [] }
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens (strip_comment line) with
      | [] -> ()
      | "automaton" :: [ n ] -> d.name <- n
      | "automaton" :: _ -> fail lineno "automaton takes exactly one name"
      | "inputs" :: signals -> d.inputs <- Some signals
      | "outputs" :: signals -> d.outputs <- Some signals
      | "initial" :: states when states <> [] -> d.initial <- Some states
      | "initial" :: _ -> fail lineno "initial needs at least one state"
      | "state" :: name :: rest ->
        let props =
          match rest with
          | [] -> []
          | "props" :: props -> props
          | _ -> fail lineno "expected 'props' after the state name"
        in
        d.states <- (name, props) :: d.states
      | "state" :: [] -> fail lineno "state needs a name"
      | "trans" :: rest -> d.trans <- parse_trans lineno rest :: d.trans
      | directive :: _ -> fail lineno (Printf.sprintf "unknown directive %S" directive))
    (String.split_on_char '\n' text);
  let require what = function
    | Some v -> v
    | None -> fail 0 (Printf.sprintf "missing %s directive" what)
  in
  let b =
    Automaton.Builder.create ~name:d.name ~inputs:(require "inputs" d.inputs)
      ~outputs:(require "outputs" d.outputs) ()
  in
  List.iter
    (fun (name, props) -> ignore (Automaton.Builder.add_state b ~props name))
    (List.rev d.states);
  List.iter
    (fun (src, inputs, outputs, dst) ->
      try Automaton.Builder.add_trans b ~src ~inputs ~outputs ~dst ()
      with Invalid_argument m -> fail 0 m)
    (List.rev d.trans);
  Automaton.Builder.set_initial b (require "initial" d.initial);
  try Automaton.Builder.build b with Invalid_argument m -> fail 0 m

let parse text =
  match parse_string ~default_name:"automaton" text with
  | m -> Ok m
  | exception Error e -> Error e

let parse_exn text =
  match parse text with
  | Ok m -> m
  | Error { line; message } ->
    invalid_arg (Printf.sprintf "Textio.parse line %d: %s" line message)

let load ~path =
  let ic = open_in path in
  let text =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let default_name = Filename.remove_extension (Filename.basename path) in
  match parse_string ~default_name text with
  | m -> Ok m
  | exception Error e -> Error e

let print (m : Automaton.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "automaton %s\n" m.Automaton.name;
  add "inputs %s\n" (String.concat " " (Universe.to_list m.Automaton.inputs));
  add "outputs %s\n" (String.concat " " (Universe.to_list m.Automaton.outputs));
  add "initial %s\n"
    (String.concat " " (List.map (Automaton.state_name m) m.Automaton.initial));
  for s = 0 to Automaton.num_states m - 1 do
    let props = Universe.names_of_set m.Automaton.props (Automaton.label m s) in
    if props = [] then add "state %s\n" (Automaton.state_name m s)
    else add "state %s props %s\n" (Automaton.state_name m s) (String.concat " " props)
  done;
  for s = 0 to Automaton.num_states m - 1 do
    List.iter
      (fun (t : Automaton.trans) ->
        add "trans %s : %s / %s -> %s\n" (Automaton.state_name m s)
          (String.concat " " (Universe.names_of_set m.Automaton.inputs t.input))
          (String.concat " " (Universe.names_of_set m.Automaton.outputs t.output))
          (Automaton.state_name m t.dst))
      (Automaton.transitions_from m s)
  done;
  Buffer.contents buf

let save ~path m =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print m))
