let reachable (m : Automaton.t) =
  let n = Automaton.num_states m in
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue
      end)
    m.Automaton.initial;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (t : Automaton.trans) ->
        if not seen.(t.dst) then begin
          seen.(t.dst) <- true;
          Queue.add t.dst queue
        end)
      (Automaton.transitions_from m s)
  done;
  seen

let reachable_count m = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (reachable m)

let blocking_states m =
  let seen = reachable m in
  let out = ref [] in
  Array.iteri (fun s r -> if r && Automaton.is_blocking m s then out := s :: !out) seen;
  List.rev !out

let prune (m : Automaton.t) =
  let seen = reachable m in
  let keep = ref [] in
  Array.iteri (fun s r -> if r then keep := s :: !keep) seen;
  let keep = List.rev !keep in
  let builder =
    Automaton.Builder.create ~name:m.Automaton.name
      ~inputs:(Universe.to_list m.inputs) ~outputs:(Universe.to_list m.outputs)
      ~props:(Universe.to_list m.props) ()
  in
  List.iter
    (fun s ->
      ignore
        (Automaton.Builder.add_state builder
           ~props:(Universe.names_of_set m.props (Automaton.label m s))
           (Automaton.state_name m s)))
    keep;
  List.iter
    (fun s ->
      List.iter
        (fun (t : Automaton.trans) ->
          Automaton.Builder.add_trans builder ~src:(Automaton.state_name m s)
            ~inputs:(Universe.names_of_set m.inputs t.input)
            ~outputs:(Universe.names_of_set m.outputs t.output)
            ~dst:(Automaton.state_name m t.dst) ())
        (Automaton.transitions_from m s))
    keep;
  Automaton.Builder.set_initial builder
    (List.map (Automaton.state_name m) m.Automaton.initial);
  Automaton.Builder.build builder

let shortest_run_to (m : Automaton.t) pred =
  let n = Automaton.num_states m in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let found = ref None in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue;
        if pred s && !found = None then found := Some s
      end)
    m.Automaton.initial;
  while !found = None && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (t : Automaton.trans) ->
        if !found = None && not seen.(t.dst) then begin
          seen.(t.dst) <- true;
          parent.(t.dst) <- Some (s, (t.input, t.output));
          if pred t.dst then found := Some t.dst else Queue.add t.dst queue
        end)
      (Automaton.transitions_from m s)
  done;
  match !found with
  | None -> None
  | Some target ->
    let rec unwind s states io =
      match parent.(s) with
      | None -> (s :: states, io)
      | Some (p, ab) -> unwind p (s :: states) (ab :: io)
    in
    let states, io = unwind target [] [] in
    Some (Run.regular ~states ~io)

let dfs_run_to (m : Automaton.t) pred =
  let n = Automaton.num_states m in
  let seen = Array.make n false in
  let rec go s states io =
    if pred s then Some (Run.regular ~states:(List.rev (s :: states)) ~io:(List.rev io))
    else begin
      seen.(s) <- true;
      let rec try_trans = function
        | [] -> None
        | (t : Automaton.trans) :: rest ->
          if seen.(t.dst) then try_trans rest
          else begin
            match go t.dst (s :: states) ((t.input, t.output) :: io) with
            | Some r -> Some r
            | None -> try_trans rest
          end
      in
      try_trans (Automaton.transitions_from m s)
    end
  in
  let rec from_initials = function
    | [] -> None
    | q :: rest -> (
      if seen.(q) then from_initials rest
      else
        match go q [] [] with Some r -> Some r | None -> from_initials rest)
  in
  from_initials m.Automaton.initial
