(** Runs and traces (Definition 2).

    A {e regular run} is [s₁, A₁/B₁, s₂, …, sₙ] where every step is a
    transition.  A {e deadlock run} is [s₁, A₁/B₁, …, sₙ, Aₙ/Bₙ] where the
    final interaction [(sₙ, Aₙ, Bₙ)] has no successor: the component refused
    it.  [π|_{I/O}] restricts a run to its observable trace and [π|_S] to its
    state sequence. *)

type io = Mechaml_util.Bitset.t * Mechaml_util.Bitset.t

type t = {
  states : Automaton.state list; (** [s₁ … sₙ], never empty *)
  io : io list;
      (** [A₁/B₁ …]; [length io = length states - 1] for a regular run and
          [length io = length states] for a deadlock run *)
  deadlock : bool;
}

val regular : states:Automaton.state list -> io:io list -> t
(** Raises [Invalid_argument] if the length invariant is violated. *)

val deadlocking : states:Automaton.state list -> io:io list -> t

val initial : Automaton.state -> t
(** The trivial run consisting of one state and no interaction. *)

val length : t -> int
(** Number of interactions. *)

val final_state : t -> Automaton.state

val trace : t -> io list
(** [π|_{I/O}]. *)

val state_sequence : t -> Automaton.state list
(** [π|_S]. *)

val is_run_of : Automaton.t -> t -> bool
(** Checks the run against [T] (and, for deadlock runs, that the final
    interaction is indeed refused) and that it starts in an initial state. *)

val append_step : t -> io -> Automaton.state -> t
(** Extend a regular run by one transition.  Raises on deadlock runs. *)

val seal_deadlock : t -> io -> t
(** Turn a regular run into a deadlock run by a final refused interaction. *)

val map_states : (Automaton.state -> Automaton.state) -> t -> t

val map_io : (io -> io) -> t -> t

val pp : Automaton.t -> Format.formatter -> t -> unit
(** Render with the automaton's state and signal names, one step per line,
    in the style of the paper's Listing 1.1. *)
