module Bitset = Mechaml_util.Bitset

let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c) (List.init (String.length s) (String.get s)))

let io_label (m : Automaton.t) (t : Automaton.trans) =
  let part u s =
    match Universe.names_of_set u s with [] -> "-" | names -> String.concat "," names
  in
  part m.inputs t.input ^ " / " ^ part m.outputs t.output

let of_automaton ?(highlight = []) (m : Automaton.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph \"%s\" {\n" (escape m.name);
  add "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n  edge [fontname=\"Helvetica\"];\n";
  let n = Automaton.num_states m in
  (* A state with the complete ℘(I)×℘(O) fan-out towards a single target is
     rendered with one '*' edge, matching the paper's figures. *)
  let full_fanout = 1 lsl (Universe.size m.inputs + Universe.size m.outputs) in
  for s = 0 to n - 1 do
    let props = Universe.names_of_set m.props (Automaton.label m s) in
    let label =
      escape (Automaton.state_name m s)
      ^ if props = [] then "" else "\\n[" ^ escape (String.concat ", " props) ^ "]"
    in
    let shape = if List.mem s m.initial then "doublecircle" else "circle" in
    let color = if List.mem s highlight then ", style=filled, fillcolor=lightyellow" else "" in
    add "  s%d [label=\"%s\", shape=%s%s];\n" s label shape color
  done;
  for s = 0 to n - 1 do
    let ts = Automaton.transitions_from m s in
    (* Group transitions by destination to detect '*' fan-outs. *)
    let by_dst = Hashtbl.create 8 in
    List.iter
      (fun (t : Automaton.trans) ->
        let l = try Hashtbl.find by_dst t.dst with Not_found -> [] in
        Hashtbl.replace by_dst t.dst (t :: l))
      ts;
    Hashtbl.iter
      (fun dst group ->
        if List.length group = full_fanout && full_fanout > 1 then
          add "  s%d -> s%d [label=\"*\"];\n" s dst
        else
          List.iter
            (fun t -> add "  s%d -> s%d [label=\"%s\"];\n" s dst (escape (io_label m t)))
            group)
      by_dst
  done;
  add "}\n";
  Buffer.contents buf

let save ~path dot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot)
