(** The refinement relation [M ⊑ M'] of Definition 4.

    [M ⊑ M'] iff (1) every run of [M] has a run of [M'] with the same
    observable trace whose final states carry matching labels, and (2) every
    deadlock run of [M] is also a deadlock run of [M'] — refinement preserves
    reactivity, not just traces.  Decided exactly by a subset-construction
    observer of the abstract automaton walked in lockstep with the concrete
    one.

    [⊑] implies simulation and therefore preserves ACTL formulas; by Lemma 1
    it additionally preserves deadlock freedom. *)

type failure_reason =
  | Label_mismatch
      (** a reachable concrete state has no label-equivalent abstract state
          reachable on the same trace (violates condition 1) *)
  | Missing_trace of Run.io
      (** the concrete automaton performs an interaction no same-trace
          abstract run can perform (violates condition 1) *)
  | Unmatched_refusal of Run.io
      (** the concrete automaton refuses an interaction that every same-trace
          abstract state accepts (violates condition 2) *)

type result = Refines | Fails of { reason : failure_reason; witness : Run.t }
    (** [witness] is a run of the concrete automaton exhibiting the failure. *)

val check :
  ?label_match:Simulation.label_match ->
  concrete:Automaton.t ->
  abstract:Automaton.t ->
  unit ->
  result
(** Signal alphabets must agree by name; raises [Invalid_argument]
    otherwise. *)

val refines :
  ?label_match:Simulation.label_match ->
  concrete:Automaton.t ->
  abstract:Automaton.t ->
  unit ->
  bool
