(** A line-oriented text format for automata, so contexts, legacy component
    simulations and properties can be kept in files and driven from the CLI
    without recompiling.

    {v
    # comment, blank lines ignored
    automaton lamp
    inputs press
    outputs burnt
    initial off
    state off props lamp.off        # optional; states may also appear only in trans
    state dead props lamp.dead
    trans off : press / -> on       # inputs before '/', outputs after, '->' dst
    trans on  : press / -> off2
    trans off2 : press / burnt -> dead
    trans dead : / -> dead          # empty sets are written as nothing
    v}

    Signals and propositions are whitespace-separated names.  The [inputs],
    [outputs] and [initial] directives are mandatory; [automaton] defaults
    the name to the file name. *)

type error = { line : int; message : string }

val parse : string -> (Automaton.t, error) result
(** Parse from a string. *)

val parse_exn : string -> Automaton.t

val load : path:string -> (Automaton.t, error) result
(** Parse a file ([automaton] name defaults to its basename). *)

val print : Automaton.t -> string
(** Render in the same format; [parse (print m)] reconstructs [m] up to
    transition order. *)

val save : path:string -> Automaton.t -> unit
