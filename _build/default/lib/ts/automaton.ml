module Bitset = Mechaml_util.Bitset

type state = int

type trans = { input : Bitset.t; output : Bitset.t; dst : state }

type t = {
  name : string;
  inputs : Universe.t;
  outputs : Universe.t;
  props : Universe.t;
  state_names : string array;
  labels : Bitset.t array;
  trans : trans list array;
  initial : state list;
}

let num_states m = Array.length m.state_names

let num_transitions m = Array.fold_left (fun acc l -> acc + List.length l) 0 m.trans

let state_name m s =
  if s < 0 || s >= num_states m then
    invalid_arg (Printf.sprintf "Automaton.state_name: state %d out of range" s);
  m.state_names.(s)

let state_index_opt m name =
  let n = num_states m in
  let rec go i = if i >= n then None else if m.state_names.(i) = name then Some i else go (i + 1) in
  go 0

let state_index m name =
  match state_index_opt m name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Automaton.state_index: unknown state %S in %s" name m.name)

let transitions_from m s = m.trans.(s)

let label m s = m.labels.(s)

let has_prop m s p =
  match Universe.index_opt m.props p with
  | Some i -> Bitset.mem i m.labels.(s)
  | None -> false

let is_blocking m s = m.trans.(s) = []

let accepts m s a b =
  List.exists (fun t -> Bitset.equal t.input a && Bitset.equal t.output b) m.trans.(s)

let successors m s a b =
  List.filter_map
    (fun t -> if Bitset.equal t.input a && Bitset.equal t.output b then Some t.dst else None)
    m.trans.(s)

let deterministic m =
  let ok = ref true in
  Array.iter
    (fun ts ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let key = (Bitset.to_int t.input, Bitset.to_int t.output) in
          if Hashtbl.mem seen key then ok := false else Hashtbl.add seen key ())
        ts)
    m.trans;
  !ok

let input_deterministic m =
  let ok = ref true in
  Array.iter
    (fun ts ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let key = Bitset.to_int t.input in
          if Hashtbl.mem seen key then ok := false else Hashtbl.add seen key ())
        ts)
    m.trans;
  !ok

let composable a b = Universe.disjoint a.inputs b.inputs && Universe.disjoint a.outputs b.outputs

let orthogonal a b =
  composable a b && Universe.disjoint a.inputs b.outputs && Universe.disjoint a.outputs b.inputs

let rename m name = { m with name }

let relabel m ~props f =
  { m with props; labels = Array.init (num_states m) f }

let dedup_trans ts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      let key = (Bitset.to_int t.input, Bitset.to_int t.output, t.dst) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ts

let restrict m ~inputs ~outputs ~props =
  let project_trans t =
    {
      input = Universe.restrict m.inputs ~to_:inputs t.input;
      output = Universe.restrict m.outputs ~to_:outputs t.output;
      dst = t.dst;
    }
  in
  {
    m with
    inputs;
    outputs;
    props;
    labels = Array.map (fun l -> Universe.restrict m.props ~to_:props l) m.labels;
    trans = Array.map (fun ts -> dedup_trans (List.map project_trans ts)) m.trans;
  }

let map_states m ~f =
  { m with state_names = Array.init (num_states m) f }

let map_signals m ~inputs ~outputs =
  {
    m with
    inputs = Universe.of_list (List.map inputs (Universe.to_list m.inputs));
    outputs = Universe.of_list (List.map outputs (Universe.to_list m.outputs));
  }

module Builder = struct
  (* the enclosing automaton type is referenced via the result of [build] *)

  type t = {
    b_name : string;
    b_inputs : Universe.t;
    b_outputs : Universe.t;
    mutable b_props : string list; (* reverse order of first mention *)
    names : (string, int) Hashtbl.t;
    mutable rev_states : string list;
    mutable n : int;
    state_props : (int, string list ref) Hashtbl.t;
    mutable rev_trans : (int * string list * string list * int) list;
    mutable initial : string list;
    declared_props : string list;
  }

  let create ~name ~inputs ~outputs ?(props = []) () =
    {
      b_name = name;
      b_inputs = Universe.of_list inputs;
      b_outputs = Universe.of_list outputs;
      b_props = List.rev props;
      names = Hashtbl.create 16;
      rev_states = [];
      n = 0;
      state_props = Hashtbl.create 16;
      rev_trans = [];
      initial = [];
      declared_props = props;
    }

  let intern_state b name =
    match Hashtbl.find_opt b.names name with
    | Some i -> i
    | None ->
      let i = b.n in
      Hashtbl.add b.names name i;
      b.rev_states <- name :: b.rev_states;
      b.n <- b.n + 1;
      Hashtbl.add b.state_props i (ref []);
      i

  let note_prop b p = if not (List.mem p b.b_props) then b.b_props <- p :: b.b_props

  let add_state b ?(props = []) name =
    let i = intern_state b name in
    let cell = Hashtbl.find b.state_props i in
    List.iter
      (fun p ->
        note_prop b p;
        if not (List.mem p !cell) then cell := p :: !cell)
      props;
    i

  let add_trans b ~src ?(inputs = []) ?(outputs = []) ~dst () =
    let s = intern_state b src in
    let d = intern_state b dst in
    (* Validate signal names eagerly so mistakes surface at model-building
       time rather than during composition. *)
    List.iter (fun i -> ignore (Universe.index b.b_inputs i)) inputs;
    List.iter (fun o -> ignore (Universe.index b.b_outputs o)) outputs;
    b.rev_trans <- (s, inputs, outputs, d) :: b.rev_trans

  let set_initial b names = b.initial <- names

  let build b =
    if b.initial = [] then
      invalid_arg (Printf.sprintf "Automaton.Builder.build: %s has no initial state" b.b_name);
    let props = Universe.of_list (List.rev b.b_props) in
    let state_names = Array.of_list (List.rev b.rev_states) in
    let labels =
      Array.init b.n (fun i ->
          Universe.set_of_names props !(Hashtbl.find b.state_props i))
    in
    let trans = Array.make (max b.n 1) [] in
    List.iter
      (fun (s, inputs, outputs, d) ->
        let t =
          {
            input = Universe.set_of_names b.b_inputs inputs;
            output = Universe.set_of_names b.b_outputs outputs;
            dst = d;
          }
        in
        trans.(s) <- t :: trans.(s))
      b.rev_trans;
    let initial =
      List.map
        (fun n ->
          match Hashtbl.find_opt b.names n with
          | Some i -> i
          | None -> invalid_arg (Printf.sprintf "Builder.build: unknown initial state %S" n))
        b.initial
    in
    {
      name = b.b_name;
      inputs = b.b_inputs;
      outputs = b.b_outputs;
      props;
      state_names;
      labels;
      trans = (if b.n = 0 then [||] else trans);
      initial;
    }
end

let pp_io m ppf (a, b) =
  Format.fprintf ppf "%a/%a" (Universe.pp_set m.inputs) a (Universe.pp_set m.outputs) b

let pp ppf m =
  Format.fprintf ppf "@[<v>automaton %s@," m.name;
  Format.fprintf ppf "  inputs:  %s@," (String.concat ", " (Universe.to_list m.inputs));
  Format.fprintf ppf "  outputs: %s@," (String.concat ", " (Universe.to_list m.outputs));
  Format.fprintf ppf "  initial: %s@,"
    (String.concat ", " (List.map (fun s -> m.state_names.(s)) m.initial));
  Array.iteri
    (fun s ts ->
      let lbl = Universe.names_of_set m.props m.labels.(s) in
      Format.fprintf ppf "  state %s%s@," m.state_names.(s)
        (if lbl = [] then "" else " [" ^ String.concat ", " lbl ^ "]");
      List.iter
        (fun t ->
          Format.fprintf ppf "    %a -> %s@," (pp_io m) (t.input, t.output)
            m.state_names.(t.dst))
        ts)
    m.trans;
  Format.fprintf ppf "@]"
