module Bitset = Mechaml_util.Bitset

type failure_reason =
  | Label_mismatch
  | Missing_trace of Run.io
  | Unmatched_refusal of Run.io

type result = Refines | Fails of { reason : failure_reason; witness : Run.t }

module Key = struct
  type t = int * int list (* concrete state, sorted abstract state set *)
end

let accepted_pairs (m : Automaton.t) embed s =
  List.map
    (fun (t : Automaton.trans) ->
      let a, b = embed t in
      (Bitset.to_int a, Bitset.to_int b))
    (Automaton.transitions_from m s)
  |> List.sort_uniq compare

let check ?(label_match = Simulation.Exact) ~(concrete : Automaton.t)
    ~(abstract : Automaton.t) () =
  (let same u u' =
     List.sort compare (Universe.to_list u) = List.sort compare (Universe.to_list u')
   in
   if not (same concrete.inputs abstract.inputs && same concrete.outputs abstract.outputs)
   then invalid_arg "Refinement.check: automata have different signal alphabets");
  let matches = Simulation.label_matcher label_match concrete abstract in
  let embed_c (t : Automaton.trans) =
    ( Universe.embed concrete.Automaton.inputs ~into:abstract.Automaton.inputs t.input,
      Universe.embed concrete.Automaton.outputs ~into:abstract.Automaton.outputs t.output )
  in
  let embed_a (t : Automaton.trans) = (t.Automaton.input, t.Automaton.output) in
  let concrete_accepted = Array.init (Automaton.num_states concrete) (fun _ -> None) in
  let abstract_accepted = Array.init (Automaton.num_states abstract) (fun _ -> None) in
  let accepted arr m embed s =
    match arr.(s) with
    | Some l -> l
    | None ->
      let l = accepted_pairs m embed s in
      arr.(s) <- Some l;
      l
  in
  let successors_of_set q a b =
    List.concat_map
      (fun s' ->
        List.filter_map
          (fun (t : Automaton.trans) ->
            if Bitset.equal t.input a && Bitset.equal t.output b then Some t.dst else None)
          (Automaton.transitions_from abstract s'))
      q
    |> List.sort_uniq compare
  in
  (* Parent links for witness reconstruction: node -> (parent, io taken). *)
  let parents : (Key.t, (Key.t * Run.io) option) Hashtbl.t = Hashtbl.create 256 in
  let queue : Key.t Queue.t = Queue.create () in
  let witness_to (s, q) extra_io ~deadlock =
    let rec unwind key states io =
      let s, _ = key in
      match Hashtbl.find parents key with
      | None -> (s :: states, io)
      | Some (parent, ab) -> unwind parent (s :: states) (ab :: io)
    in
    let states, io = unwind (s, q) [] [] in
    let io = io @ Option.to_list extra_io in
    if deadlock then Run.deadlocking ~states ~io else Run.regular ~states ~io
  in
  let failure = ref None in
  let fail key reason extra_io ~deadlock =
    if !failure = None then
      failure := Some (Fails { reason; witness = witness_to key extra_io ~deadlock })
  in
  let intersect_sorted a b = List.filter (fun x -> List.mem x b) a in
  let visit_node ((s, q) as key) =
    (* Condition 1, label part. *)
    if not (List.exists (fun s' -> matches s s') q) then
      fail key Label_mismatch None ~deadlock:false
    else begin
      (* Condition 2: refusals of the concrete state must be refusable by some
         same-trace abstract state.  Fails iff some interaction is accepted by
         every abstract state in [q] but refused by [s]. *)
      let acc_c = accepted concrete_accepted concrete embed_c s in
      let common =
        match q with
        | [] -> []
        | s0 :: rest ->
          List.fold_left
            (fun acc s' -> intersect_sorted acc (accepted abstract_accepted abstract embed_a s'))
            (accepted abstract_accepted abstract embed_a s0)
            rest
      in
      (match List.find_opt (fun ab -> not (List.mem ab acc_c)) common with
      | Some (a, b) ->
        (* Convert the interaction back into the concrete automaton's signal
           indexing so the witness prints with the right names. *)
        let io =
          ( Universe.embed abstract.Automaton.inputs ~into:concrete.Automaton.inputs
              (Bitset.of_int_unsafe a),
            Universe.embed abstract.Automaton.outputs ~into:concrete.Automaton.outputs
              (Bitset.of_int_unsafe b) )
        in
        fail key (Unmatched_refusal io) (Some io) ~deadlock:true
      | None -> ());
      (* Condition 1, trace part: explore successors. *)
      List.iter
        (fun (t : Automaton.trans) ->
          if !failure = None then begin
            let a, b = embed_c t in
            let io_concrete = (t.input, t.output) in
            let q1 = successors_of_set q a b in
            let child = (t.dst, q1) in
            if q1 = [] then begin
              (* Record the failing step so the witness includes it. *)
              if not (Hashtbl.mem parents child) then
                Hashtbl.add parents child (Some (key, io_concrete));
              fail child (Missing_trace io_concrete) None ~deadlock:false
            end
            else if not (Hashtbl.mem parents child) then begin
              Hashtbl.add parents child (Some (key, io_concrete));
              Queue.add child queue
            end
          end)
        (Automaton.transitions_from concrete s)
    end
  in
  let q0 = List.sort_uniq compare abstract.Automaton.initial in
  List.iter
    (fun s ->
      let key = (s, q0) in
      if not (Hashtbl.mem parents key) then begin
        Hashtbl.add parents key None;
        Queue.add key queue
      end)
    concrete.Automaton.initial;
  while !failure = None && not (Queue.is_empty queue) do
    visit_node (Queue.pop queue)
  done;
  match !failure with Some f -> f | None -> Refines

let refines ?label_match ~concrete ~abstract () =
  match check ?label_match ~concrete ~abstract () with Refines -> true | Fails _ -> false
