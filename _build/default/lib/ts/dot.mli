(** Graphviz export, used to regenerate the paper's figures (Fig. 3–7). *)

val of_automaton : ?highlight:Automaton.state list -> Automaton.t -> string
(** DOT digraph: double circles for initial states, state labels show the
    atomic propositions, edge labels show [A/B] interactions ([*] abbreviates
    the full interaction set as in the paper's figures when a state has the
    complete fan-out). *)

val save : path:string -> string -> unit
(** Write a DOT string to a file. *)
