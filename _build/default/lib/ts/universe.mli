(** Named universes of signals or atomic propositions.

    A universe fixes the correspondence between human-readable names (such as
    ["convoyProposal"] or ["frontRole.noConvoy"]) and the small integer
    indices used by {!Mechaml_util.Bitset}.  Every automaton carries three
    universes: input signals [I], output signals [O] and atomic propositions
    [P] (Definition 1 extended for property specification, Section 2.1). *)

type t

val of_list : string list -> t
(** Builds a universe whose indices follow list order.  Raises
    [Invalid_argument] on duplicate names or when the list exceeds
    {!Mechaml_util.Bitset.max_width} elements. *)

val empty : t

val size : t -> int

val mem : t -> string -> bool

val index : t -> string -> int
(** Raises [Not_found] (with the offending name in the message via
    [Invalid_argument]) when the name is absent. *)

val index_opt : t -> string -> int option

val name : t -> int -> string

val to_list : t -> string list

val equal : t -> t -> bool

val disjoint : t -> t -> bool
(** No shared names. *)

val union : t -> t -> t
(** Concatenation: indices of the left operand are preserved, the right
    operand's elements follow.  Raises [Invalid_argument] unless the two are
    disjoint (composability, Definition 3). *)

val embed : t -> into:t -> Mechaml_util.Bitset.t -> Mechaml_util.Bitset.t
(** [embed u ~into s] re-indexes a bitset from universe [u] into the (super)
    universe [into]; every name of [u] must exist in [into]. *)

val restrict : t -> to_:t -> Mechaml_util.Bitset.t -> Mechaml_util.Bitset.t
(** [restrict u ~to_ s] keeps only the elements of [s] whose names also occur
    in [to_], re-indexed into [to_]. *)

val set_of_names : t -> string list -> Mechaml_util.Bitset.t
(** Bitset of the given names.  Raises on unknown names. *)

val names_of_set : t -> Mechaml_util.Bitset.t -> string list

val pp_set : t -> Format.formatter -> Mechaml_util.Bitset.t -> unit
