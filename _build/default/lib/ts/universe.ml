module Bitset = Mechaml_util.Bitset

type t = { names : string array; indices : (string, int) Hashtbl.t }

let of_list names =
  if List.length names > Bitset.max_width then
    invalid_arg
      (Printf.sprintf "Universe.of_list: more than %d names" Bitset.max_width);
  let indices = Hashtbl.create 16 in
  List.iteri
    (fun i n ->
      if Hashtbl.mem indices n then
        invalid_arg (Printf.sprintf "Universe.of_list: duplicate name %S" n);
      Hashtbl.add indices n i)
    names;
  { names = Array.of_list names; indices }

let empty = of_list []

let size t = Array.length t.names

let mem t n = Hashtbl.mem t.indices n

let index_opt t n = Hashtbl.find_opt t.indices n

let index t n =
  match index_opt t n with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Universe.index: unknown name %S" n)

let name t i =
  if i < 0 || i >= size t then
    invalid_arg (Printf.sprintf "Universe.name: index %d out of range" i);
  t.names.(i)

let to_list t = Array.to_list t.names

let equal a b = to_list a = to_list b

let disjoint a b = Array.for_all (fun n -> not (mem b n)) a.names

let union a b =
  if not (disjoint a b) then invalid_arg "Universe.union: universes overlap";
  of_list (to_list a @ to_list b)

let embed u ~into s =
  Bitset.fold (fun i acc -> Bitset.add (index into (name u i)) acc) s Bitset.empty

let restrict u ~to_ s =
  Bitset.fold
    (fun i acc ->
      match index_opt to_ (name u i) with
      | Some j -> Bitset.add j acc
      | None -> acc)
    s Bitset.empty

let set_of_names t names =
  List.fold_left (fun acc n -> Bitset.add (index t n) acc) Bitset.empty names

let names_of_set t s = List.map (name t) (Bitset.elements s)

let pp_set t ppf s = Bitset.pp ~names:(name t) ppf s
