(** Simulation preorder [⪯] (Section 2.3/2.4).

    [s ⪯ s'] iff the labels match and every transition of [s] can be matched
    by a transition of [s'] with the same interaction into related states.
    Refinement (Definition 4) implies simulation; simulation preserves ACTL
    formulas. *)

type label_match =
  | Exact  (** name-set equality [L(s) = L'(s')] *)
  | Wildcard of string
      (** abstract states carrying this proposition match any concrete label —
          the paper's [p'] trick for the chaotic states (Section 2.7) *)

val label_matcher :
  label_match -> Automaton.t -> Automaton.t -> Automaton.state -> Automaton.state -> bool
(** [label_matcher lm concrete abstract] compares state labels by proposition
    {e names} (the universes may order propositions differently), honouring
    the wildcard.  Shared with {!Refinement}. *)

val simulates :
  ?label_match:label_match -> concrete:Automaton.t -> abstract:Automaton.t -> unit -> bool
(** [simulates ~concrete ~abstract ()] decides whether every initial state of
    [concrete] is simulated by some initial state of [abstract].  The two
    automata must have identical input and output signal {e names} (order may
    differ); raises [Invalid_argument] otherwise. *)
