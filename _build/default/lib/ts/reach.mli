(** Reachability over automata: the state-space sweeps shared by the model
    checker, the refinement checker and the statistics reported by the
    benchmark harness. *)

val reachable : Automaton.t -> bool array
(** Characteristic vector of the states reachable from the initial set. *)

val reachable_count : Automaton.t -> int

val blocking_states : Automaton.t -> Automaton.state list
(** Reachable states without outgoing transitions (the [δ] witnesses). *)

val prune : Automaton.t -> Automaton.t
(** Restrict to the reachable sub-automaton (state indices are renumbered,
    names preserved). *)

val shortest_run_to : Automaton.t -> (Automaton.state -> bool) -> Run.t option
(** BFS: a shortest regular run from an initial state to a state satisfying
    the predicate. *)

val dfs_run_to : Automaton.t -> (Automaton.state -> bool) -> Run.t option
(** Depth-first alternative (first run found, not necessarily shortest); used
    by the counterexample-strategy ablation (EXP-T3). *)
