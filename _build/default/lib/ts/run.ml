module Bitset = Mechaml_util.Bitset

type io = Bitset.t * Bitset.t

type t = { states : Automaton.state list; io : io list; deadlock : bool }

let check ~deadlock states io =
  let ns = List.length states and ni = List.length io in
  if ns = 0 then invalid_arg "Run: empty state sequence";
  let expected = if deadlock then ns else ns - 1 in
  if ni <> expected then
    invalid_arg
      (Printf.sprintf "Run: %d states need %d interactions (%s run), got %d" ns expected
         (if deadlock then "deadlock" else "regular")
         ni)

let regular ~states ~io =
  check ~deadlock:false states io;
  { states; io; deadlock = false }

let deadlocking ~states ~io =
  check ~deadlock:true states io;
  { states; io; deadlock = true }

let initial s = { states = [ s ]; io = []; deadlock = false }

let length r = List.length r.io

let final_state r = List.nth r.states (List.length r.states - 1)

let trace r = r.io

let state_sequence r = r.states

let is_run_of m r =
  let rec steps states io =
    match (states, io) with
    | [ _ ], [] -> not r.deadlock
    | [ s ], [ (a, b) ] when r.deadlock -> not (Automaton.accepts m s a b)
    | s :: (s' :: _ as rest), (a, b) :: io' ->
      List.mem s' (Automaton.successors m s a b) && steps rest io'
    | _ -> false
  in
  match r.states with
  | [] -> false
  | first :: _ -> List.mem first m.Automaton.initial && steps r.states r.io

let append_step r io dst =
  if r.deadlock then invalid_arg "Run.append_step: run already deadlocked";
  { states = r.states @ [ dst ]; io = r.io @ [ io ]; deadlock = false }

let seal_deadlock r io =
  if r.deadlock then invalid_arg "Run.seal_deadlock: run already deadlocked";
  { r with io = r.io @ [ io ]; deadlock = true }

let map_states f r = { r with states = List.map f r.states }

let map_io f r = { r with io = List.map f r.io }

let pp m ppf r =
  let pp_state ppf s = Format.pp_print_string ppf (Automaton.state_name m s) in
  let rec go states io =
    match (states, io) with
    | [ s ], [] -> Format.fprintf ppf "%a@," pp_state s
    | [ s ], [ ab ] ->
      Format.fprintf ppf "%a@,%a  <refused>@," pp_state s (Automaton.pp_io m) ab
    | s :: rest, ab :: io' ->
      Format.fprintf ppf "%a@,%a@," pp_state s (Automaton.pp_io m) ab;
      go rest io'
    | _ -> ()
  in
  Format.fprintf ppf "@[<v>";
  go r.states r.io;
  Format.fprintf ppf "@]"
