lib/ts/reach.mli: Automaton Run
