lib/ts/automaton.ml: Array Format Hashtbl List Mechaml_util Printf String Universe
