lib/ts/textio.ml: Automaton Buffer Filename Fun List Printf String Universe
