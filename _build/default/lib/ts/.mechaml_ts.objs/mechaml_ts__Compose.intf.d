lib/ts/compose.mli: Automaton Run
