lib/ts/universe.mli: Format Mechaml_util
