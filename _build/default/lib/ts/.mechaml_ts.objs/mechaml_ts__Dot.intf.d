lib/ts/dot.mli: Automaton
