lib/ts/simulation.mli: Automaton
