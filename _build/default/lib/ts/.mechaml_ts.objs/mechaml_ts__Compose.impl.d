lib/ts/compose.ml: Array Automaton Hashtbl List Mechaml_util Printf Queue Run Universe
