lib/ts/automaton.mli: Format Mechaml_util Universe
