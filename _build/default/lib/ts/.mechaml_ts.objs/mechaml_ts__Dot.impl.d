lib/ts/dot.ml: Automaton Buffer Fun Hashtbl List Mechaml_util Printf String Universe
