lib/ts/universe.ml: Array Hashtbl List Mechaml_util Printf
