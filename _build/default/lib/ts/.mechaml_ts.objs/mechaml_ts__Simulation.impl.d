lib/ts/simulation.ml: Array Automaton List Mechaml_util Universe
