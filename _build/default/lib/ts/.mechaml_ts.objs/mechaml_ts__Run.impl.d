lib/ts/run.ml: Automaton Format List Mechaml_util Printf
