lib/ts/run.mli: Automaton Format Mechaml_util
