lib/ts/reach.ml: Array Automaton List Queue Run Universe
