lib/ts/refinement.ml: Array Automaton Hashtbl List Mechaml_util Option Queue Run Simulation Universe
