lib/ts/textio.mli: Automaton
