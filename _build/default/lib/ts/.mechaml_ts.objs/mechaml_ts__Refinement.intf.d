lib/ts/refinement.mli: Automaton Run Simulation
