module Bitset = Mechaml_util.Bitset

type label_match = Exact | Wildcard of string

let check_same_signals (m : Automaton.t) (m' : Automaton.t) =
  let same u u' =
    List.sort compare (Universe.to_list u) = List.sort compare (Universe.to_list u')
  in
  if not (same m.inputs m'.inputs && same m.outputs m'.outputs) then
    invalid_arg "Simulation: automata have different signal alphabets"

let label_matcher label_match (m : Automaton.t) (m' : Automaton.t) =
  let names_of side s =
    match side with
    | `C -> Universe.names_of_set m.Automaton.props (Automaton.label m s)
    | `A -> Universe.names_of_set m'.Automaton.props (Automaton.label m' s)
  in
  let wildcard_prop =
    match label_match with Exact -> None | Wildcard p -> Some p
  in
  fun s s' ->
    match wildcard_prop with
    | Some p when Automaton.has_prop m' s' p -> true
    | _ -> List.sort compare (names_of `C s) = List.sort compare (names_of `A s')

(* Interactions are compared by signal names, so re-embed the concrete side's
   bitsets into the abstract universes once up front. *)
let embedder (m : Automaton.t) (m' : Automaton.t) =
  fun (t : Automaton.trans) ->
    ( Universe.embed m.Automaton.inputs ~into:m'.Automaton.inputs t.input,
      Universe.embed m.Automaton.outputs ~into:m'.Automaton.outputs t.output )

let simulates ?(label_match = Exact) ~(concrete : Automaton.t) ~(abstract : Automaton.t) () =
  check_same_signals concrete abstract;
  let matches = label_matcher label_match concrete abstract in
  let embed = embedder concrete abstract in
  let n = Automaton.num_states concrete and n' = Automaton.num_states abstract in
  (* Greatest fixpoint: start from label-compatible pairs, remove pairs whose
     transition obligation fails, iterate to stability. *)
  let rel = Array.make_matrix n n' false in
  for s = 0 to n - 1 do
    for s' = 0 to n' - 1 do
      rel.(s).(s') <- matches s s'
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      for s' = 0 to n' - 1 do
        if rel.(s).(s') then begin
          let ok =
            List.for_all
              (fun (t : Automaton.trans) ->
                let a, b = embed t in
                List.exists
                  (fun (t' : Automaton.trans) ->
                    Bitset.equal t'.input a && Bitset.equal t'.output b && rel.(t.dst).(t'.dst))
                  (Automaton.transitions_from abstract s'))
              (Automaton.transitions_from concrete s)
          in
          if not ok then begin
            rel.(s).(s') <- false;
            changed := true
          end
        end
      done
    done
  done;
  List.for_all
    (fun q -> List.exists (fun q' -> rel.(q).(q')) abstract.Automaton.initial)
    concrete.Automaton.initial
