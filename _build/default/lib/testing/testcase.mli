(** Test cases derived from model-checking counterexamples (Section 5).

    A counterexample trace of the composed system, restricted to the legacy
    component, yields the input vector to drive the component with and the
    output vector the abstraction predicted.  Executing the test classifies
    the run: fully reproduced (the counterexample is real), diverged (the
    component responded differently — new behaviour to learn), or blocked
    (the component refused an input — a deadlock run to learn). *)

type t = {
  name : string;
  inputs : string list list;            (** input signal set per period *)
  expected_outputs : string list list;  (** the abstraction's prediction *)
}

val of_projected_run :
  ?name:string -> Mechaml_ts.Automaton.t -> Mechaml_ts.Run.t -> t
(** [of_projected_run legacy_side run] decodes a run already projected onto
    the legacy side (e.g. by {!Mechaml_ts.Compose.project_right}) using that
    automaton's signal universes. *)

type classification =
  | Reproduced
  | Diverged of { period : int; expected : string list; observed : string list }
  | Blocked of { period : int; refused : string list }

type verdict = {
  classification : classification;
  observation : Mechaml_legacy.Observation.t;
}

val execute : box:Mechaml_legacy.Blackbox.t -> t -> verdict
(** Run the test under deterministic replay and classify the outcome.
    Periods are numbered from 1, as in the paper's [Timing] events. *)

val pp : Format.formatter -> t -> unit

val pp_classification : Format.formatter -> classification -> unit
