type report = { testcase : Testcase.t; executions : int; removed : int }

let drop_range l ~from ~len =
  List.filteri (fun i _ -> i < from || i >= from + len) l

let minimize ~box ~keep (t : Testcase.t) =
  let executions = ref 0 in
  let try_keep candidate =
    incr executions;
    keep (Testcase.execute ~box candidate)
  in
  if not (try_keep t) then
    invalid_arg "Shrink.minimize: the predicate does not hold for the original test";
  let shrink_pass chunk current =
    (* try dropping [chunk]-sized windows left to right *)
    let rec go from current =
      if from >= List.length current.Testcase.inputs then current
      else
        let candidate =
          {
            current with
            Testcase.inputs = drop_range current.Testcase.inputs ~from ~len:chunk;
            expected_outputs = drop_range current.Testcase.expected_outputs ~from ~len:chunk;
          }
        in
        if List.length candidate.Testcase.inputs < List.length current.Testcase.inputs
           && try_keep candidate
        then go from candidate
        else go (from + 1) current
    in
    go 0 current
  in
  let rec rounds chunk current =
    if chunk < 1 then current
    else
      let current = shrink_pass chunk current in
      rounds (chunk / 2) current
  in
  (* iterate single-period passes to a fixpoint: 1-minimality *)
  let rec settle current =
    let next = shrink_pass 1 current in
    if List.length next.Testcase.inputs = List.length current.Testcase.inputs then current
    else settle next
  in
  let n = List.length t.Testcase.inputs in
  (* chunk sizes are powers of two so that every window width down to 1 is
     attempted (plain halving from n/2 can skip widths) *)
  let rec pow2 p = if p * 2 <= max 1 (n / 2) then pow2 (p * 2) else p in
  let result = settle (rounds (pow2 1) t) in
  {
    testcase = { result with Testcase.name = t.Testcase.name ^ " (minimized)" };
    executions = !executions;
    removed = n - List.length result.Testcase.inputs;
  }
