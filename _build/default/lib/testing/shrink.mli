(** Test-input minimisation.

    Counterexample traces grow with the abstraction, not with the essence of
    the fault; before archiving a failing test (or handing it to a human),
    shrink it to a minimal input sequence that still exhibits the interesting
    outcome.  Delta-debugging style: repeatedly drop periods (largest chunks
    first) while the caller's predicate keeps holding on re-execution under
    deterministic replay. *)

type report = {
  testcase : Testcase.t;  (** the minimised test *)
  executions : int;       (** component runs spent shrinking *)
  removed : int;          (** periods dropped from the original *)
}

val minimize :
  box:Mechaml_legacy.Blackbox.t ->
  keep:(Testcase.verdict -> bool) ->
  Testcase.t ->
  report
(** [keep] must hold for the original test (checked; raises
    [Invalid_argument] otherwise) and judges every candidate: a period is
    dropped — from both the inputs and the expected outputs, which stay in
    lockstep — only when the shrunk test still satisfies it.  The result is
    1-minimal: dropping any single remaining period breaks [keep]. *)
