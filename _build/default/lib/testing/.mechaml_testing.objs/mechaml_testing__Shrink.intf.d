lib/testing/shrink.mli: Mechaml_legacy Testcase
