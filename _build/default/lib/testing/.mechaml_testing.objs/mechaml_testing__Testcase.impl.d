lib/testing/testcase.ml: Format List Mechaml_legacy Mechaml_ts Stdlib String
