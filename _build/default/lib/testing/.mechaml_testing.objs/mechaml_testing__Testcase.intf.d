lib/testing/testcase.mli: Format Mechaml_legacy Mechaml_ts
