lib/testing/shrink.ml: List Testcase
