module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Run = Mechaml_ts.Run
module Observation = Mechaml_legacy.Observation

type t = {
  name : string;
  inputs : string list list;
  expected_outputs : string list list;
}

let of_projected_run ?(name = "counterexample") (side : Automaton.t) run =
  {
    name;
    inputs =
      List.map (fun (a, _) -> Universe.names_of_set side.Automaton.inputs a) (Run.trace run);
    expected_outputs =
      List.map (fun (_, b) -> Universe.names_of_set side.Automaton.outputs b) (Run.trace run);
  }

type classification =
  | Reproduced
  | Diverged of { period : int; expected : string list; observed : string list }
  | Blocked of { period : int; refused : string list }

type verdict = { classification : classification; observation : Observation.t }

let execute ~box t =
  let observation = Observation.observe ~box ~inputs:t.inputs in
  let rec compare period (steps : Observation.step list) expected =
    match (steps, expected) with
    | [], [] -> (
      match observation.Observation.refused with
      | Some (_, refused) -> Blocked { period; refused }
      | None -> Reproduced)
    | [], _ :: _ -> (
      (* The run stopped early: it must have blocked. *)
      match observation.Observation.refused with
      | Some (_, refused) -> Blocked { period; refused }
      | None -> Blocked { period; refused = [] })
    | step :: steps', exp :: expected' ->
      let obs = List.sort_uniq compare_strings step.Observation.outputs in
      let exp = List.sort_uniq compare_strings exp in
      if obs = exp then compare (period + 1) steps' expected'
      else Diverged { period; expected = exp; observed = obs }
    | _ :: _, [] -> Reproduced
  and compare_strings (a : string) b = Stdlib.compare a b in
  { classification = compare 1 observation.Observation.steps t.expected_outputs; observation }

let pp ppf t =
  Format.fprintf ppf "@[<v>test %s (%d periods)@," t.name (List.length t.inputs);
  List.iteri
    (fun i (ins, outs) ->
      Format.fprintf ppf "  %d: feed {%s}, expect {%s}@," (i + 1) (String.concat "," ins)
        (String.concat "," outs))
    (List.combine t.inputs t.expected_outputs);
  Format.fprintf ppf "@]"

let pp_classification ppf = function
  | Reproduced -> Format.pp_print_string ppf "reproduced"
  | Diverged { period; expected; observed } ->
    Format.fprintf ppf "diverged at period %d: expected {%s}, observed {%s}" period
      (String.concat "," expected) (String.concat "," observed)
  | Blocked { period; refused } ->
    Format.fprintf ppf "blocked at period %d on {%s}" period (String.concat "," refused)
