module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Rtsc = Mechaml_rtsc.Rtsc
module Connector = Mechaml_muml.Connector
module Blackbox = Mechaml_legacy.Blackbox
module Loop = Mechaml_core.Loop

let rear_tx = [ "convoyProposal_tx"; "breakConvoyProposal_tx" ]

let rear_rx =
  [
    "convoyProposalRejected_rx";
    "startConvoy_rx";
    "breakConvoyProposalRejected_rx";
    "breakConvoyAccepted_rx";
  ]

let legacy_remote =
  let b = Automaton.Builder.create ~name:"shuttle2" ~inputs:rear_rx ~outputs:rear_tx () in
  Automaton.Builder.add_trans b ~src:"noConvoy::default" ~outputs:[ "convoyProposal_tx" ]
    ~dst:"noConvoy::wait" ();
  (* replies cross a channel: idle deterministically while they are in flight *)
  Automaton.Builder.add_trans b ~src:"noConvoy::wait" ~dst:"noConvoy::wait" ();
  Automaton.Builder.add_trans b ~src:"noConvoy::wait" ~inputs:[ "convoyProposalRejected_rx" ]
    ~dst:"noConvoy::default" ();
  Automaton.Builder.add_trans b ~src:"noConvoy::wait" ~inputs:[ "startConvoy_rx" ]
    ~dst:"convoy::default" ();
  Automaton.Builder.add_trans b ~src:"convoy::default" ~outputs:[ "breakConvoyProposal_tx" ]
    ~dst:"convoy::wait" ();
  Automaton.Builder.add_trans b ~src:"convoy::wait" ~dst:"convoy::wait" ();
  Automaton.Builder.add_trans b ~src:"convoy::wait"
    ~inputs:[ "breakConvoyProposalRejected_rx" ] ~dst:"convoy::default" ();
  Automaton.Builder.add_trans b ~src:"convoy::wait" ~inputs:[ "breakConvoyAccepted_rx" ]
    ~dst:"noConvoy::default" ();
  Automaton.Builder.set_initial b [ "noConvoy::default" ];
  Automaton.Builder.build b

let box_remote = Blackbox.of_automaton ~port:"rearRole" legacy_remote

(* The front role for connector-mediated operation.  [grace] controls
   whether accepting a convoy break passes through the [convoy::leaving]
   state that covers the in-flight acknowledgement. *)
let front ~grace =
  let c =
    Rtsc.create ~name:"frontRole"
      ~inputs:[ "convoyProposal"; "breakConvoyProposal" ]
      ~outputs:
        [
          "convoyProposalRejected";
          "startConvoy";
          "breakConvoyProposalRejected";
          "breakConvoyAccepted";
        ]
      ()
  in
  Rtsc.add_state c ~initial:true "noConvoy";
  Rtsc.add_state c ~parent:"noConvoy" ~initial:true ~idle:true "default";
  Rtsc.add_state c ~parent:"noConvoy" "answer";
  Rtsc.add_state c "convoy";
  Rtsc.add_state c ~parent:"convoy" ~initial:true ~idle:true "default";
  Rtsc.add_state c ~parent:"convoy" "breakAnswer";
  if grace then Rtsc.add_state c ~parent:"convoy" "leaving";
  Rtsc.add_transition c ~src:"noConvoy::default" ~trigger:[ "convoyProposal" ]
    ~dst:"noConvoy::answer" ();
  Rtsc.add_transition c ~src:"noConvoy::answer" ~effect:[ "convoyProposalRejected" ]
    ~dst:"noConvoy::default" ();
  Rtsc.add_transition c ~src:"noConvoy::answer" ~effect:[ "startConvoy" ] ~dst:"convoy::default"
    ();
  Rtsc.add_transition c ~src:"convoy::default" ~trigger:[ "breakConvoyProposal" ]
    ~dst:"convoy::breakAnswer" ();
  Rtsc.add_transition c ~src:"convoy::breakAnswer" ~effect:[ "breakConvoyProposalRejected" ]
    ~dst:"convoy::default" ();
  if grace then begin
    Rtsc.add_transition c ~src:"convoy::breakAnswer" ~effect:[ "breakConvoyAccepted" ]
      ~dst:"convoy::leaving" ();
    Rtsc.add_transition c ~src:"convoy::leaving" ~dst:"noConvoy::default" ()
  end
  else
    Rtsc.add_transition c ~src:"convoy::breakAnswer" ~effect:[ "breakConvoyAccepted" ]
      ~dst:"noConvoy::default" ();
  Rtsc.flatten ~label_prefix:"frontRole." c

let uplink ~lossy =
  Connector.channel ~name:"uplink" ~lossy
    ~routes:
      [
        ("convoyProposal_tx", "convoyProposal");
        ("breakConvoyProposal_tx", "breakConvoyProposal");
      ]
    ()

let downlink ~lossy =
  Connector.channel ~name:"downlink" ~lossy
    ~routes:
      [
        ("convoyProposalRejected", "convoyProposalRejected_rx");
        ("startConvoy", "startConvoy_rx");
        ("breakConvoyProposalRejected", "breakConvoyProposalRejected_rx");
        ("breakConvoyAccepted", "breakConvoyAccepted_rx");
      ]
    ()

let context ~lossy =
  Compose.parallel_many [ front ~grace:true; uplink ~lossy; downlink ~lossy ]

let front_hasty_context =
  Compose.parallel_many [ front ~grace:false; uplink ~lossy:false; downlink ~lossy:false ]

let constraint_ =
  Mechaml_logic.Parser.parse_exn "AG (not (rearRole.convoy and frontRole.noConvoy))"

let response_property =
  Mechaml_logic.Parser.parse_exn
    "AG ((not rearRole.noConvoy::wait) or AF[1,6] (not rearRole.noConvoy::wait))"

let label_of = Labels.hierarchical ~prefix:"rearRole."

let run ?strategy ~lossy ~property () =
  Loop.run ?strategy ~label_of ~context:(context ~lossy) ~property ~legacy:box_remote ()
