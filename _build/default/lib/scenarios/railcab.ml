module Automaton = Mechaml_ts.Automaton
module Rtsc = Mechaml_rtsc.Rtsc
module Role = Mechaml_muml.Role
module Pattern = Mechaml_muml.Pattern
module Ctl = Mechaml_logic.Ctl
module Blackbox = Mechaml_legacy.Blackbox
module Loop = Mechaml_core.Loop

let rear_to_front = [ "convoyProposal"; "breakConvoyProposal" ]

let front_to_rear =
  [ "convoyProposalRejected"; "startConvoy"; "breakConvoyProposalRejected"; "breakConvoyAccepted" ]

let front_rtsc () =
  let c = Rtsc.create ~name:"frontRole" ~inputs:rear_to_front ~outputs:front_to_rear () in
  Rtsc.add_state c ~initial:true "noConvoy";
  Rtsc.add_state c ~parent:"noConvoy" ~initial:true ~idle:true "default";
  Rtsc.add_state c ~parent:"noConvoy" "answer";
  Rtsc.add_state c "convoy";
  Rtsc.add_state c ~parent:"convoy" ~initial:true ~idle:true "default";
  Rtsc.add_state c ~parent:"convoy" "breakAnswer";
  Rtsc.add_transition c ~src:"noConvoy::default" ~trigger:[ "convoyProposal" ]
    ~dst:"noConvoy::answer" ();
  Rtsc.add_transition c ~src:"noConvoy::answer" ~effect:[ "convoyProposalRejected" ]
    ~dst:"noConvoy::default" ();
  Rtsc.add_transition c ~src:"noConvoy::answer" ~effect:[ "startConvoy" ] ~dst:"convoy::default" ();
  Rtsc.add_transition c ~src:"convoy::default" ~trigger:[ "breakConvoyProposal" ]
    ~dst:"convoy::breakAnswer" ();
  Rtsc.add_transition c ~src:"convoy::breakAnswer" ~effect:[ "breakConvoyProposalRejected" ]
    ~dst:"convoy::default" ();
  Rtsc.add_transition c ~src:"convoy::breakAnswer" ~effect:[ "breakConvoyAccepted" ]
    ~dst:"noConvoy::default" ();
  c

(* The rear-role specification mirrors the handshake from the proposing
   side.  It deliberately has no idle steps: under the refinement of
   Definition 4 an implementation may only refuse an interaction the role
   itself can refuse, so every interaction the specification offers is
   obligated behaviour. *)
let rear_rtsc () =
  let c = Rtsc.create ~name:"rearRole" ~inputs:front_to_rear ~outputs:rear_to_front () in
  Rtsc.add_state c ~initial:true "noConvoy";
  Rtsc.add_state c ~parent:"noConvoy" ~initial:true "default";
  Rtsc.add_state c ~parent:"noConvoy" "wait";
  Rtsc.add_state c "convoy";
  Rtsc.add_state c ~parent:"convoy" ~initial:true "default";
  Rtsc.add_state c ~parent:"convoy" "wait";
  Rtsc.add_transition c ~src:"noConvoy::default" ~effect:[ "convoyProposal" ] ~dst:"noConvoy::wait"
    ();
  Rtsc.add_transition c ~src:"noConvoy::wait" ~trigger:[ "convoyProposalRejected" ]
    ~dst:"noConvoy::default" ();
  Rtsc.add_transition c ~src:"noConvoy::wait" ~trigger:[ "startConvoy" ] ~dst:"convoy::default" ();
  Rtsc.add_transition c ~src:"convoy::default" ~effect:[ "breakConvoyProposal" ] ~dst:"convoy::wait"
    ();
  Rtsc.add_transition c ~src:"convoy::wait" ~trigger:[ "breakConvoyProposalRejected" ]
    ~dst:"convoy::default" ();
  Rtsc.add_transition c ~src:"convoy::wait" ~trigger:[ "breakConvoyAccepted" ]
    ~dst:"noConvoy::default" ();
  c

let front_role = Role.make ~name:"frontRole" ~behavior:(front_rtsc ()) ()

let rear_role = Role.make ~name:"rearRole" ~behavior:(rear_rtsc ()) ()

let constraint_ =
  Mechaml_logic.Parser.parse_exn "AG (not (rearRole.convoy and frontRole.noConvoy))"

let pattern =
  Pattern.make ~name:"DistanceCoordination" ~roles:[ front_role; rear_role ]
    ~constraint_ ()

let context = Role.automaton front_role

(* The correct legacy implementation: a deterministic component whose probe
   state names follow the rear-role hierarchy (as Listing 1.5 shows). *)
let legacy_correct =
  let b =
    Automaton.Builder.create ~name:"shuttle2" ~inputs:front_to_rear ~outputs:rear_to_front ()
  in
  Automaton.Builder.add_trans b ~src:"noConvoy::default" ~outputs:[ "convoyProposal" ]
    ~dst:"noConvoy::wait" ();
  Automaton.Builder.add_trans b ~src:"noConvoy::wait" ~inputs:[ "convoyProposalRejected" ]
    ~dst:"noConvoy::default" ();
  Automaton.Builder.add_trans b ~src:"noConvoy::wait" ~inputs:[ "startConvoy" ]
    ~dst:"convoy::default" ();
  Automaton.Builder.add_trans b ~src:"convoy::default" ~outputs:[ "breakConvoyProposal" ]
    ~dst:"convoy::wait" ();
  Automaton.Builder.add_trans b ~src:"convoy::wait" ~inputs:[ "breakConvoyProposalRejected" ]
    ~dst:"convoy::default" ();
  Automaton.Builder.add_trans b ~src:"convoy::wait" ~inputs:[ "breakConvoyAccepted" ]
    ~dst:"noConvoy::default" ();
  Automaton.Builder.set_initial b [ "noConvoy::default" ];
  Automaton.Builder.build b

(* The paper's faulty component (Fig. 6): it assumes the convoy exists the
   moment it proposes one, and processes the front role's rejection only
   after having already reduced its distance. *)
let legacy_conflicting =
  let b =
    Automaton.Builder.create ~name:"shuttle2" ~inputs:front_to_rear ~outputs:rear_to_front ()
  in
  Automaton.Builder.add_trans b ~src:"noConvoy" ~outputs:[ "convoyProposal" ] ~dst:"convoy" ();
  Automaton.Builder.add_trans b ~src:"convoy" ~inputs:[ "convoyProposalRejected" ] ~dst:"noConvoy"
    ();
  Automaton.Builder.add_trans b ~src:"convoy" ~inputs:[ "startConvoy" ] ~dst:"convoy" ();
  Automaton.Builder.set_initial b [ "noConvoy" ];
  Automaton.Builder.build b

let box_correct = Blackbox.of_automaton ~port:"rearRole" legacy_correct

let box_conflicting = Blackbox.of_automaton ~port:"rearRole" legacy_conflicting

let label_of = Labels.hierarchical ~prefix:"rearRole."

let run_correct ?strategy () =
  Loop.run ?strategy ~label_of ~context ~property:constraint_ ~legacy:box_correct ()

let run_conflicting ?strategy () =
  Loop.run ?strategy ~label_of ~context ~property:constraint_ ~legacy:box_conflicting ()
