(** A three-role coordination pattern: two feeder shuttles merging onto a
    shared track section under an arbiter.

    This exercises the approach with a {e composite} context — the legacy
    component implements one role, and its context is the composition of the
    two remaining roles ({!Mechaml_muml.Pattern.context_for}).  The arbiter
    polls the feeders in turn; a feeder may request the section or pass, the
    arbiter grants or denies, and the section is exclusive:
    [AG ¬(feederA.merging ∧ feederB.merging)].

    The faulty feeder implementation treats a denial as a grant — it merges
    anyway and only backs off when polled again — which lets both feeders
    occupy the section: a real constraint violation the loop finds by fast
    conflict detection. *)

val pattern : Mechaml_muml.Pattern.t
(** MergeCoordination with roles [arbiter], [feederA], [feederB]. *)

val constraint_ : Mechaml_logic.Ctl.t

val context : Mechaml_ts.Automaton.t
(** [Pattern.context_for pattern ~role:"feederA"]: arbiter ∥ feederB. *)

val feeder_correct : Mechaml_ts.Automaton.t

val feeder_pushy : Mechaml_ts.Automaton.t
(** Merges on a denial. *)

val box_correct : Mechaml_legacy.Blackbox.t

val box_pushy : Mechaml_legacy.Blackbox.t

val label_of : string -> string list

val run_correct : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result

val run_pushy : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result
