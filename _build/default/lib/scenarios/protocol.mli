(** A second integration scenario: a stop-and-wait (alternating-bit style)
    sender integrated against a receiver context.

    The receiver acknowledges each data frame with the matching
    acknowledgement in the same period.  The correct sender alternates
    [data0]/[data1] and waits for each acknowledgement; the faulty
    "fire-and-forget" sender never consumes acknowledgements — integrating it
    deadlocks the link, which the synthesis loop detects as a real deadlock
    after a handful of iterations. *)

val sender_to_receiver : string list
(** [data0], [data1]. *)

val receiver_to_sender : string list
(** [ack0], [ack1]. *)

val receiver : Mechaml_ts.Automaton.t
(** The context [M_a^c]: strictly alternating receiver (labels
    [receiver.expect0] / [receiver.expect1]). *)

val sender_correct : Mechaml_ts.Automaton.t

val sender_fire_and_forget : Mechaml_ts.Automaton.t

val box_correct : Mechaml_legacy.Blackbox.t

val box_fire_and_forget : Mechaml_legacy.Blackbox.t

val label_of : string -> string list
(** [sender.] hierarchical labels. *)

val property : Mechaml_logic.Ctl.t
(** [AG ¬(receiver.expect0 ∧ sender.wait1)]: the receiver cannot be waiting
    for frame 0 while the sender still waits for the acknowledgement of
    frame 1 — sequence-number agreement. *)

val run_correct : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result

val run_fire_and_forget :
  ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result
