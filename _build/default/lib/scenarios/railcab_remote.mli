(** The DistanceCoordination pattern over an explicit wireless connector
    (Section "Modeling": the connector statechart "models channel delay and
    reliability, which are of crucial importance for real-time systems").

    Unlike {!Railcab}, where the roles communicate synchronously, here every
    message crosses a delay-1 channel, so the rear shuttle learns about the
    front shuttle's decisions one period late.  Two consequences the loop
    exposes:

    - the front role needs a [convoy::leaving] grace state covering the
      period its [breakConvoyAccepted] is still in flight — without it the
      pattern constraint is briefly violated while the rear still believes
      in the convoy (the variant {!front_hasty_context} demonstrates the
      resulting {e real} violation);
    - over a {e lossy} channel the handshake still never deadlocks (both
      sides idle), but the bounded-response obligation
      {!response_property} fails for real: a lost proposal leaves the rear
      waiting beyond any deadline. *)

val legacy_remote : Mechaml_ts.Automaton.t
(** The rear-role implementation for connector-mediated operation: as
    {!Railcab.legacy_correct} but idling while replies are in flight.
    Signals are suffixed [_tx]/[_rx] to route through the channels. *)

val box_remote : Mechaml_legacy.Blackbox.t

val context : lossy:bool -> Mechaml_ts.Automaton.t
(** frontRole ∥ uplink channel ∥ downlink channel (delay 1 each).  The front
    role includes the [convoy::leaving] grace state. *)

val front_hasty_context : Mechaml_ts.Automaton.t
(** The same reliable context but with a front role that leaves [convoy]
    the moment it sends [breakConvoyAccepted] — the delayed message makes
    the pattern constraint violable. *)

val constraint_ : Mechaml_logic.Ctl.t
(** [AG ¬(rearRole.convoy ∧ frontRole.noConvoy)], as in the synchronous
    pattern. *)

val response_property : Mechaml_logic.Ctl.t
(** [AG (rearRole.noConvoy::wait → AF\[1,6\] ¬rearRole.noConvoy::wait)]: a
    proposal is answered within six time units — holds over the reliable
    channel, fails for real over the lossy one. *)

val label_of : string -> string list

val run :
  ?strategy:Mechaml_mc.Witness.strategy ->
  lossy:bool ->
  property:Mechaml_logic.Ctl.t ->
  unit ->
  Mechaml_core.Loop.result
