lib/scenarios/labels.mli:
