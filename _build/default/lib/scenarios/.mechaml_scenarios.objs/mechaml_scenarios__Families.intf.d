lib/scenarios/families.mli: Mechaml_legacy Mechaml_logic Mechaml_ts
