lib/scenarios/railcab.mli: Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_muml Mechaml_ts
