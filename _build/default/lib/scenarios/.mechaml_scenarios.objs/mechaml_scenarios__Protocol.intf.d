lib/scenarios/protocol.mli: Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts
