lib/scenarios/listing.mli: Mechaml_ts
