lib/scenarios/protocol.ml: Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_ts
