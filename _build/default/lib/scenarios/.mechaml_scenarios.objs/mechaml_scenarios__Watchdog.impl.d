lib/scenarios/watchdog.ml: Labels Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_rtsc Mechaml_ts Printf
