lib/scenarios/families.ml: List Mechaml_legacy Mechaml_logic Mechaml_ts Mechaml_util Printf
