lib/scenarios/merge.ml: Labels Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_muml Mechaml_rtsc Mechaml_ts
