lib/scenarios/listing.ml: Buffer List Mechaml_ts Printf String
