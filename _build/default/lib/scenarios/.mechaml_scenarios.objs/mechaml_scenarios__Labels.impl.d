lib/scenarios/labels.ml: List String
