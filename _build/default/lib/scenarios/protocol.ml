module Automaton = Mechaml_ts.Automaton
module Blackbox = Mechaml_legacy.Blackbox
module Loop = Mechaml_core.Loop

let sender_to_receiver = [ "data0"; "data1" ]

let receiver_to_sender = [ "ack0"; "ack1" ]

let receiver =
  let b =
    Automaton.Builder.create ~name:"receiver" ~inputs:sender_to_receiver
      ~outputs:receiver_to_sender ()
  in
  ignore (Automaton.Builder.add_state b ~props:[ "receiver.expect0" ] "expect0");
  ignore (Automaton.Builder.add_state b ~props:[ "receiver.acking0" ] "acking0");
  ignore (Automaton.Builder.add_state b ~props:[ "receiver.expect1" ] "expect1");
  ignore (Automaton.Builder.add_state b ~props:[ "receiver.acking1" ] "acking1");
  Automaton.Builder.add_trans b ~src:"expect0" ~inputs:[ "data0" ] ~dst:"acking0" ();
  Automaton.Builder.add_trans b ~src:"acking0" ~outputs:[ "ack0" ] ~dst:"expect1" ();
  Automaton.Builder.add_trans b ~src:"expect1" ~inputs:[ "data1" ] ~dst:"acking1" ();
  Automaton.Builder.add_trans b ~src:"acking1" ~outputs:[ "ack1" ] ~dst:"expect0" ();
  Automaton.Builder.set_initial b [ "expect0" ];
  Automaton.Builder.build b

let sender_correct =
  let b =
    Automaton.Builder.create ~name:"sender" ~inputs:receiver_to_sender
      ~outputs:sender_to_receiver ()
  in
  Automaton.Builder.add_trans b ~src:"send0" ~outputs:[ "data0" ] ~dst:"wait0" ();
  Automaton.Builder.add_trans b ~src:"wait0" ~inputs:[ "ack0" ] ~dst:"send1" ();
  Automaton.Builder.add_trans b ~src:"send1" ~outputs:[ "data1" ] ~dst:"wait1" ();
  Automaton.Builder.add_trans b ~src:"wait1" ~inputs:[ "ack1" ] ~dst:"send0" ();
  Automaton.Builder.set_initial b [ "send0" ];
  Automaton.Builder.build b

(* The faulty implementation: streams frames and never consumes an
   acknowledgement, so the synchronous link jams one period after the first
   frame. *)
let sender_fire_and_forget =
  let b =
    Automaton.Builder.create ~name:"sender" ~inputs:receiver_to_sender
      ~outputs:sender_to_receiver ()
  in
  Automaton.Builder.add_trans b ~src:"send0" ~outputs:[ "data0" ] ~dst:"send1" ();
  Automaton.Builder.add_trans b ~src:"send1" ~outputs:[ "data1" ] ~dst:"send0" ();
  Automaton.Builder.set_initial b [ "send0" ];
  Automaton.Builder.build b

let box_correct = Blackbox.of_automaton ~port:"link" sender_correct

let box_fire_and_forget = Blackbox.of_automaton ~port:"link" sender_fire_and_forget

let label_of s = [ "sender." ^ s ]

let property =
  Mechaml_logic.Parser.parse_exn "AG (not (receiver.expect0 and sender.wait1))"

let run_correct ?strategy () =
  Loop.run ?strategy ~label_of ~context:receiver ~property ~legacy:box_correct ()

let run_fire_and_forget ?strategy () =
  Loop.run ?strategy ~label_of ~context:receiver ~property ~legacy:box_fire_and_forget ()
