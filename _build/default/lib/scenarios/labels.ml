let hierarchical ~prefix name =
  let parts = String.split_on_char ':' name in
  (* "a::b" splits as ["a"; ""; "b"]: drop the empty separators and rebuild
     the cumulative paths. *)
  let segments = List.filter (fun s -> s <> "") parts in
  let _, acc =
    List.fold_left
      (fun (path, acc) seg ->
        let path = if path = "" then seg else path ^ "::" ^ seg in
        (path, (prefix ^ path) :: acc))
      ("", []) segments
  in
  List.rev acc
