module Automaton = Mechaml_ts.Automaton
module Rtsc = Mechaml_rtsc.Rtsc
module Role = Mechaml_muml.Role
module Pattern = Mechaml_muml.Pattern
module Blackbox = Mechaml_legacy.Blackbox
module Loop = Mechaml_core.Loop

let to_feeder x = [ "poll" ^ x; "grant" ^ x; "deny" ^ x ]

let from_feeder x = [ "request" ^ x; "pass" ^ x; "leave" ^ x ]

(* The arbiter polls A and B in turn; a granted feeder owns the section
   until it leaves. *)
let arbiter_rtsc () =
  let c =
    Rtsc.create ~name:"arbiter"
      ~inputs:(from_feeder "A" @ from_feeder "B")
      ~outputs:(to_feeder "A" @ to_feeder "B")
      ()
  in
  let declare x =
    Rtsc.add_state c ~initial:(x = "A") ("ask" ^ x);
    Rtsc.add_state c ("wait" ^ x);
    Rtsc.add_state c ("decide" ^ x);
    Rtsc.add_state c ("busy" ^ x)
  in
  let wire x next =
    Rtsc.add_transition c ~src:("ask" ^ x) ~effect:[ "poll" ^ x ] ~dst:("wait" ^ x) ();
    Rtsc.add_transition c ~src:("wait" ^ x) ~trigger:[ "request" ^ x ] ~dst:("decide" ^ x) ();
    Rtsc.add_transition c ~src:("wait" ^ x) ~trigger:[ "pass" ^ x ] ~dst:("ask" ^ next) ();
    Rtsc.add_transition c ~src:("decide" ^ x) ~effect:[ "grant" ^ x ] ~dst:("busy" ^ x) ();
    Rtsc.add_transition c ~src:("decide" ^ x) ~effect:[ "deny" ^ x ] ~dst:("ask" ^ next) ();
    Rtsc.add_transition c ~src:("busy" ^ x) ~trigger:[ "leave" ^ x ] ~dst:("ask" ^ next) ()
  in
  declare "A";
  declare "B";
  wire "A" "B";
  wire "B" "A";
  c

(* The feeder role: answer polls with a request or a pass, merge only when
   granted, and leave spontaneously — the arbiter sits in busyX until the
   leave arrives and never polls meanwhile. *)
let feeder_rtsc x =
  let c =
    Rtsc.create ~name:("feeder" ^ x) ~inputs:(to_feeder x) ~outputs:(from_feeder x) ()
  in
  Rtsc.add_state c ~initial:true ~idle:true "idle";
  Rtsc.add_state c "answer";
  Rtsc.add_state c "waiting";
  Rtsc.add_state c "merging";
  Rtsc.add_transition c ~src:"idle" ~trigger:[ "poll" ^ x ] ~dst:"answer" ();
  Rtsc.add_transition c ~src:"answer" ~effect:[ "request" ^ x ] ~dst:"waiting" ();
  Rtsc.add_transition c ~src:"answer" ~effect:[ "pass" ^ x ] ~dst:"idle" ();
  Rtsc.add_transition c ~src:"waiting" ~trigger:[ "grant" ^ x ] ~dst:"merging" ();
  Rtsc.add_transition c ~src:"waiting" ~trigger:[ "deny" ^ x ] ~dst:"idle" ();
  Rtsc.add_transition c ~src:"merging" ~effect:[ "leave" ^ x ] ~dst:"idle" ();
  c

let arbiter_role = Role.make ~name:"arbiter" ~behavior:(arbiter_rtsc ()) ()

let feeder_a_role = Role.make ~name:"feederA" ~behavior:(feeder_rtsc "A") ()

let feeder_b_role = Role.make ~name:"feederB" ~behavior:(feeder_rtsc "B") ()

let constraint_ =
  Mechaml_logic.Parser.parse_exn "AG (not (feederA.merging and feederB.merging))"

let pattern =
  Pattern.make ~name:"MergeCoordination"
    ~roles:[ arbiter_role; feeder_a_role; feeder_b_role ]
    ~constraint_ ()

let context = Pattern.context_for pattern ~role:"feederA"

(* Deterministic feeder A implementations. *)
let feeder_impl ~pushy =
  let b =
    Automaton.Builder.create ~name:"feederA" ~inputs:(to_feeder "A")
      ~outputs:(from_feeder "A") ()
  in
  Automaton.Builder.add_trans b ~src:"idle" ~inputs:[ "pollA" ] ~dst:"answer" ();
  Automaton.Builder.add_trans b ~src:"idle" ~dst:"idle" ();
  Automaton.Builder.add_trans b ~src:"answer" ~outputs:[ "requestA" ] ~dst:"waiting" ();
  if pushy then begin
    (* a sanctioned merge behaves; a denial is treated as a grant: the
       feeder squats on the section and only backs off at the next poll *)
    Automaton.Builder.add_trans b ~src:"waiting" ~inputs:[ "grantA" ] ~dst:"merging::granted" ();
    Automaton.Builder.add_trans b ~src:"waiting" ~inputs:[ "denyA" ] ~dst:"merging::squatting" ();
    Automaton.Builder.add_trans b ~src:"merging::granted" ~outputs:[ "leaveA" ] ~dst:"idle" ();
    Automaton.Builder.add_trans b ~src:"merging::squatting" ~dst:"merging::squatting" ();
    Automaton.Builder.add_trans b ~src:"merging::squatting" ~inputs:[ "pollA" ]
      ~outputs:[ "leaveA" ] ~dst:"idle" ()
  end
  else begin
    Automaton.Builder.add_trans b ~src:"waiting" ~inputs:[ "grantA" ] ~dst:"merging" ();
    Automaton.Builder.add_trans b ~src:"waiting" ~inputs:[ "denyA" ] ~dst:"idle" ();
    Automaton.Builder.add_trans b ~src:"merging" ~outputs:[ "leaveA" ] ~dst:"idle" ()
  end;
  Automaton.Builder.set_initial b [ "idle" ];
  Automaton.Builder.build b

let feeder_correct = feeder_impl ~pushy:false

let feeder_pushy = feeder_impl ~pushy:true

let box_correct = Blackbox.of_automaton ~port:"feederA" feeder_correct

let box_pushy = Blackbox.of_automaton ~port:"feederA" feeder_pushy

let label_of = Labels.hierarchical ~prefix:"feederA."

let run_correct ?strategy () =
  Loop.run ?strategy ~label_of ~context ~property:constraint_ ~legacy:box_correct ()

let run_pushy ?strategy () =
  Loop.run ?strategy ~label_of ~context ~property:constraint_ ~legacy:box_pushy ()
