(** Rendering of counterexamples in the paper's listing style.

    Listing 1.1 prints a product run as alternating lines of state pairs
    ([shuttle1.noConvoy, shuttle2.s_all]) and message exchanges
    ([shuttle2.convoyProposal!, shuttle1.convoyProposal?]) — the sender
    marked with [!], the receiver with [?]. *)

val render :
  left_name:string ->
  right_name:string ->
  Mechaml_ts.Compose.product ->
  Mechaml_ts.Run.t ->
  string
(** [render ~left_name ~right_name product run] names the left operand's
    states [left_name.<state>] and the right operand's [right_name.<state>];
    each interaction line lists the signals exchanged, sender first. *)
