(** The paper's running example: the RailCab DistanceCoordination pattern
    (Fig. 1, Fig. 5) and the two legacy rear-role implementations the paper's
    walkthrough exercises — a conflicting one (Fig. 6 / Listing 1.4) and a
    correct one (Fig. 7 / Listing 1.5).

    Shuttles coordinate so that convoys only form deliberately: the front
    role may only reduce its braking force once a convoy is established, so
    the pattern constraint forbids the rear shuttle to consider itself in a
    convoy while the front shuttle does not
    ([AG ¬(rearRole.convoy ∧ frontRole.noConvoy)]). *)

(** {1 Signals} *)

val rear_to_front : string list
(** [convoyProposal], [breakConvoyProposal]. *)

val front_to_rear : string list
(** [convoyProposalRejected], [startConvoy], [breakConvoyProposalRejected],
    [breakConvoyAccepted]. *)

(** {1 Pattern model} *)

val front_role : Mechaml_muml.Role.t
(** The frontRole real-time statechart of Fig. 5 (hierarchical: [answer] is a
    substate of [noConvoy], [breakAnswer] of [convoy]). *)

val rear_role : Mechaml_muml.Role.t
(** The rearRole specification statechart the legacy component should
    refine. *)

val constraint_ : Mechaml_logic.Ctl.t
(** The pattern constraint [AG ¬(rearRole.convoy ∧ frontRole.noConvoy)]. *)

val pattern : Mechaml_muml.Pattern.t
(** DistanceCoordination: both roles plus the constraint (direct wireless
    link modelled as the synchronous connection; a delayed/lossy connector
    variant is available through {!Mechaml_muml.Connector}). *)

val context : Mechaml_ts.Automaton.t
(** [M_a^c]: the front role automaton — the context the legacy rear-role
    component is integrated against. *)

(** {1 Legacy components} *)

val legacy_correct : Mechaml_ts.Automaton.t
(** A correct rear-role implementation: proposes, awaits the reply, enters
    the convoy only on [startConvoy]; proposes breaking and leaves only on
    [breakConvoyAccepted] (superset of Fig. 7, with the break handshake). *)

val legacy_conflicting : Mechaml_ts.Automaton.t
(** The paper's faulty implementation: assumes the convoy is established as
    soon as it proposed it (Fig. 6) — violating the pattern constraint while
    the front role still deliberates. *)

val box_correct : Mechaml_legacy.Blackbox.t

val box_conflicting : Mechaml_legacy.Blackbox.t

val label_of : string -> string list
(** Labels for learned rear states: hierarchical, prefixed with
    [rearRole.]. *)

(** {1 Running the paper's walkthrough} *)

val run_correct : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result
(** The Fig. 7 / Listing 1.5 walkthrough: iterates to [Proved]. *)

val run_conflicting : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result
(** The Fig. 6 / Listing 1.4 walkthrough: terminates with a real property
    violation found by fast conflict detection. *)
