module Automaton = Mechaml_ts.Automaton
module Rtsc = Mechaml_rtsc.Rtsc
module Blackbox = Mechaml_legacy.Blackbox
module Loop = Mechaml_core.Loop

let watchdog =
  let c = Rtsc.create ~name:"watchdog" ~inputs:[ "heartbeat" ] ~outputs:[] () in
  Rtsc.add_clock c "x";
  Rtsc.add_state c ~initial:true ~idle:true ~invariant:[ ("x", Rtsc.Le, 3) ] "waiting";
  Rtsc.add_state c "justFed";
  Rtsc.add_state c ~idle:true "starved";
  Rtsc.add_transition c ~src:"waiting" ~trigger:[ "heartbeat" ] ~resets:[ "x" ] ~dst:"justFed" ();
  Rtsc.add_transition c ~src:"justFed" ~dst:"waiting" ();
  (* the deadline passes: the invariant forbids further dwelling, and without
     a heartbeat the only remaining move is the timeout *)
  Rtsc.add_transition c ~src:"waiting" ~guard:[ ("x", Rtsc.Ge, 3) ] ~dst:"starved" ();
  Rtsc.flatten ~label_prefix:"watchdog." c

let property = Mechaml_logic.Parser.parse_exn "AG (not watchdog.starved)"

let deadline_property =
  Mechaml_logic.Parser.parse_exn "AG ((not watchdog.waiting) or AF[1,3] watchdog.justFed)"

(* A controller beating every [period] time units. *)
let controller ~name ~period =
  let b = Automaton.Builder.create ~name ~inputs:[] ~outputs:[ "heartbeat" ] () in
  let state i = Printf.sprintf "tick%d" i in
  for i = 0 to period - 2 do
    Automaton.Builder.add_trans b ~src:(state i) ~dst:(state (i + 1)) ()
  done;
  Automaton.Builder.add_trans b ~src:(state (period - 1)) ~outputs:[ "heartbeat" ]
    ~dst:(state 0) ();
  Automaton.Builder.set_initial b [ state 0 ];
  Automaton.Builder.build b

let controller_prompt = controller ~name:"controller" ~period:2

let controller_sluggish = controller ~name:"controller" ~period:5

let box_prompt = Blackbox.of_automaton ~port:"heartbeatPort" controller_prompt

let box_sluggish = Blackbox.of_automaton ~port:"heartbeatPort" controller_sluggish

let label_of = Labels.hierarchical ~prefix:"controller."

let run_prompt ?strategy () =
  Loop.run ?strategy ~label_of ~context:watchdog ~property ~legacy:box_prompt ()

let run_sluggish ?strategy () =
  Loop.run ?strategy ~label_of ~context:watchdog ~property ~legacy:box_sluggish ()
