(** A timed integration scenario: a watchdog context with a discrete clock
    supervises a legacy controller that must emit a heartbeat at least every
    three time units.

    This exercises the real-time half of the model through the whole loop:
    the context is a real-time statechart whose invariant ([x ≤ 3]) bounds
    dwelling, timing is learned implicitly (one transition = one time unit,
    Definition 1), and a too-slow component surfaces as a {e real} violation
    of [AG ¬watchdog.starved] — the paper's class of maximal-delay
    obligations (Section 2.4). *)

val watchdog : Mechaml_ts.Automaton.t
(** The flattened context: waits with invariant [x ≤ 3], resets the clock on
    [heartbeat], and escapes to the [starved] state when the deadline
    passes. *)

val property : Mechaml_logic.Ctl.t
(** [AG ¬watchdog.starved]. *)

val deadline_property : Mechaml_logic.Ctl.t
(** The equivalent CCTL maximal-delay obligation
    [AG(¬watchdog.waiting ∨ AF\[1,3\] watchdog.justFed)] — checkable on the
    exact composition (used by tests/benches to exercise bounded
    operators). *)

val controller_prompt : Mechaml_ts.Automaton.t
(** Beats every second time unit — meets the deadline. *)

val controller_sluggish : Mechaml_ts.Automaton.t
(** Beats every fourth time unit — misses the deadline. *)

val box_prompt : Mechaml_legacy.Blackbox.t

val box_sluggish : Mechaml_legacy.Blackbox.t

val label_of : string -> string list

val run_prompt : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result

val run_sluggish : ?strategy:Mechaml_mc.Witness.strategy -> unit -> Mechaml_core.Loop.result
