(** Labelling conventions shared by the scenarios.

    Legacy component states probed by deterministic replay carry hierarchical
    names ([noConvoy::wait]); the propositions they satisfy are all their
    ancestors, qualified with the role prefix — mirroring what
    {!Mechaml_rtsc.Rtsc.flatten} does for modelled roles. *)

val hierarchical : prefix:string -> string -> string list
(** [hierarchical ~prefix "a::b::c"] is
    [\["<prefix>a"; "<prefix>a::b"; "<prefix>a::b::c"\]]. *)
