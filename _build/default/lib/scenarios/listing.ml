module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose
module Run = Mechaml_ts.Run

let render ~left_name ~right_name (p : Compose.product) run =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let left = p.Compose.left and right = p.Compose.right in
  let state_line s =
    let l, r = (Compose.left_state p s, Compose.right_state p s) in
    add "%s.%s, %s.%s\n" left_name (Automaton.state_name left l) right_name
      (Automaton.state_name right r)
  in
  let io_line (a, b) =
    (* Attribute each signal: if the right operand outputs it, the right is
       the sender; the consumer is whoever has it among its inputs. *)
    let a_names = Universe.names_of_set p.Compose.auto.Automaton.inputs a in
    let b_names = Universe.names_of_set p.Compose.auto.Automaton.outputs b in
    let outputs_of side = Universe.to_list side.Automaton.outputs in
    let parts =
      List.filter_map
        (fun signal ->
          let sender =
            if List.mem signal (outputs_of right) then right_name
            else if List.mem signal (outputs_of left) then left_name
            else "env"
          in
          let receiver = if sender = right_name then left_name else right_name in
          if List.mem signal a_names || List.mem signal b_names then
            Some (Printf.sprintf "%s.%s!, %s.%s?" sender signal receiver signal)
          else None)
        (List.sort_uniq compare (a_names @ b_names))
    in
    match parts with
    | [] -> add "  (silent period)\n"
    | _ -> add "%s\n" (String.concat "; " parts)
  in
  let rec go states io =
    match (states, io) with
    | [ s ], [] -> state_line s
    | s :: rest, ab :: io' ->
      state_line s;
      io_line ab;
      go rest io'
    | _ -> ()
  in
  go (Run.state_sequence run) (Run.trace run);
  if run.Run.deadlock then add "  <deadlock>\n";
  Buffer.contents buf
