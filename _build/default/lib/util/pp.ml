let comma_list pp ppf l =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp ppf l

let semi_list pp ppf l =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp ppf l

let str fmt = Format.asprintf fmt

let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row -> match List.nth_opt row c with Some cell -> max acc (String.length cell) | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = Option.value ~default:"" (List.nth_opt row c) in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
