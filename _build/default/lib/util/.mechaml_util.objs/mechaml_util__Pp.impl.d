lib/util/pp.ml: Format List Option String
