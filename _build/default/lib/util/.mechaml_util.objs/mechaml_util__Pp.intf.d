lib/util/pp.mli: Format
