lib/util/prng.mli:
