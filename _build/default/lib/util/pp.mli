(** Shared pretty-printing helpers used across the library's printers. *)

val comma_list : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
(** Print a list with [", "] separators. *)

val semi_list : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a list -> unit
(** Print a list with ["; "] separators. *)

val str : ('a, Format.formatter, unit, string) format4 -> 'a
(** Alias of {!Format.asprintf}. *)

val table : header:string list -> string list list -> string
(** Render an aligned plain-text table with a header row and a separator
    line, as used by the benchmark harness to print the reproduced series. *)
