module Blackbox = Mechaml_legacy.Blackbox

let joint_sep = '&'

let sep_string = String.make 1 joint_sep

let joint parts = String.concat sep_string parts

let share (b : Blackbox.t) signals =
  List.filter (fun s -> List.mem s b.Blackbox.input_signals) signals

let combine (boxes : Blackbox.t list) =
  if List.length boxes < 2 then invalid_arg "Multi.combine: need at least two components";
  let all_signals =
    List.concat_map
      (fun (b : Blackbox.t) -> b.Blackbox.input_signals @ b.Blackbox.output_signals)
      boxes
  in
  if List.length all_signals <> List.length (List.sort_uniq compare all_signals) then
    invalid_arg
      "Multi.combine: components share signal names — legacy-to-legacy links are not supported";
  List.iter
    (fun (b : Blackbox.t) ->
      if String.contains b.Blackbox.initial_state joint_sep then
        invalid_arg "Multi.combine: state names must not contain '&'")
    boxes;
  let connect () =
    (* A joint step advances every component or none: if a later component
       refuses its share after earlier ones already advanced, the earlier
       sessions are rolled back by replaying the accepted history on fresh
       sessions (refusals never advance a component, so the history is
       exactly the accepted joint inputs). *)
    let history : string list list ref = ref [] in
    let fresh_sessions () =
      List.map
        (fun (b : Blackbox.t) ->
          let s = b.Blackbox.connect () in
          List.iter (fun past -> ignore (s.Blackbox.step ~inputs:(share b past))) (List.rev !history);
          (b, s))
        boxes
    in
    let sessions = ref (List.map (fun (b : Blackbox.t) -> (b, b.Blackbox.connect ())) boxes) in
    let step ~inputs =
      let rec go acc advanced = function
        | [] ->
          history := inputs :: !history;
          Some (List.concat (List.rev acc))
        | ((b : Blackbox.t), s) :: rest -> (
          match s.Blackbox.step ~inputs:(share b inputs) with
          | Some outs -> go (outs :: acc) (advanced + 1) rest
          | None ->
            if advanced > 0 then sessions := fresh_sessions ();
            None)
      in
      go [] 0 !sessions
    in
    let probe_state () =
      joint (List.map (fun ((_ : Blackbox.t), s) -> s.Blackbox.probe_state ()) !sessions)
    in
    { Blackbox.step; probe_state }
  in
  {
    Blackbox.name = joint (List.map (fun (b : Blackbox.t) -> b.Blackbox.name) boxes);
    port = joint (List.map (fun (b : Blackbox.t) -> b.Blackbox.port) boxes);
    input_signals = List.concat_map (fun (b : Blackbox.t) -> b.Blackbox.input_signals) boxes;
    output_signals = List.concat_map (fun (b : Blackbox.t) -> b.Blackbox.output_signals) boxes;
    initial_state = joint (List.map (fun (b : Blackbox.t) -> b.Blackbox.initial_state) boxes);
    state_bound =
      List.fold_left (fun acc (b : Blackbox.t) -> acc * b.Blackbox.state_bound) 1 boxes;
    connect;
  }

let joint_labels fs name =
  let parts = String.split_on_char joint_sep name in
  if List.length parts <> List.length fs then []
  else List.concat (List.map2 (fun f part -> f part) fs parts)

let split_model ~components (m : Incomplete.t) =
  let k = List.length components in
  if k < 2 then invalid_arg "Multi.split_model: need at least two components";
  let split_state name =
    let parts = String.split_on_char joint_sep name in
    if List.length parts = k then parts
    else invalid_arg (Printf.sprintf "Multi.split_model: state %S is not a %d-tuple" name k)
  in
  let project_interaction (b : Blackbox.t) (i : Incomplete.interaction) =
    Incomplete.interaction
      ~inputs:(List.filter (fun s -> List.mem s b.Blackbox.input_signals) i.Incomplete.in_signals)
      ~outputs:
        (List.filter (fun s -> List.mem s b.Blackbox.output_signals) i.Incomplete.out_signals)
  in
  let base =
    List.map
      (fun ((b : Blackbox.t), idx) ->
        let model =
          Incomplete.create ~name:b.Blackbox.name ~inputs:b.Blackbox.input_signals
            ~outputs:b.Blackbox.output_signals
            ~initial_state:(List.nth (split_state (List.hd m.Incomplete.initial)) idx)
        in
        (b, idx, ref model))
      (List.mapi (fun idx b -> (b, idx)) components)
  in
  (* Transitions project component-wise; determinism of each component makes
     the projections consistent. *)
  List.iter
    (fun (src, i, dst) ->
      let src_parts = split_state src and dst_parts = split_state dst in
      List.iter
        (fun (b, idx, model) ->
          model :=
            Incomplete.add_transition !model ~src:(List.nth src_parts idx)
              (project_interaction b i) ~dst:(List.nth dst_parts idx))
        base)
    m.Incomplete.trans;
  (* A refusal of the joint interaction is attributed to a component only
     when every other component demonstrably accepts its share. *)
  List.iter
    (fun (state, refused_inputs) ->
      let parts = split_state state in
      List.iter
        (fun (b, idx, model) ->
          let others_known =
            List.for_all
              (fun (b', idx', model') ->
                idx' = idx
                || Incomplete.known_response !model' ~state:(List.nth parts idx')
                     ~inputs:(share b' refused_inputs)
                   <> None)
              base
          in
          if others_known then
            model :=
              Incomplete.add_refusal !model ~state:(List.nth parts idx)
                ~inputs:(share b refused_inputs))
        base)
    m.Incomplete.refusals;
  List.map (fun ((b : Blackbox.t), _, model) -> (b.Blackbox.name, !model)) base

type result = {
  loop : Loop.result;
  component_models : (string * Incomplete.t) list;
}

let run ?strategy ?label_of ?max_iterations ~context ~property ~legacies () =
  let box = combine legacies in
  let loop = Loop.run ?strategy ?label_of ?max_iterations ~context ~property ~legacy:box () in
  { loop; component_models = split_model ~components:legacies loop.Loop.final_model }
