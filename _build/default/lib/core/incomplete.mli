(** Incomplete automata (Definition 6): the learned knowledge about a legacy
    component.

    An incomplete automaton is [M = (S, I, O, T, T̄, Q)] where [T] holds the
    {e known} transitions (observed behaviour) and [T̄] the {e known refused}
    interactions.  A deadlock run is only assumed when explicitly recorded in
    [T̄], never merely because [T] lacks a transition (Definition 7) — the
    missing interactions are {e unknown}, and the chaotic closure
    ({!Chaos.closure}) over-approximates them.

    Because the legacy component is input-deterministic (the paper's standing
    assumption, Section 4.3: "we only require that the implementation [M_r]
    is deterministic"), a refusal of an input set [A] refuses every
    interaction [(A, B)], so [T̄] is recorded at input granularity; likewise a
    known transition [(s, A, B, s')] rules out every [(s, A, B')] with
    [B' ≠ B].  Both facts sharpen the closure and are what makes each failed
    test strictly shrink the unknown set (the Theorem 2 termination
    argument). *)

type interaction = {
  in_signals : string list;   (** sorted input signal names, [A] *)
  out_signals : string list;  (** sorted output signal names, [B] *)
}

val interaction : inputs:string list -> outputs:string list -> interaction

type t = private {
  name : string;
  input_signals : string list;
  output_signals : string list;
  states : string list;  (** in discovery order *)
  initial : string list;
  trans : (string * interaction * string) list;  (** [T] *)
  refusals : (string * string list) list;
      (** [T̄] at input granularity: [(state, refused input set)] *)
}

val create :
  name:string ->
  inputs:string list ->
  outputs:string list ->
  initial_state:string ->
  t
(** The trivial incomplete automaton of Section 3: one known (initial) state,
    no known transitions, no known refusals — [M_l⁰] (Lemma 4, Fig. 4(a)). *)

val add_transition : t -> src:string -> interaction -> dst:string -> t
(** Extends [S] with unseen states and [T] with the transition (idempotent).
    Raises [Invalid_argument] if it would contradict existing knowledge: a
    recorded refusal of the same [(state, inputs)], or a different response
    to the same [(state, inputs)] (input determinism). *)

val add_refusal : t -> state:string -> inputs:string list -> t
(** Extends [T̄].  Raises [Invalid_argument] when [T] already has a transition
    on [(state, inputs)]: [T] and [T̄] must stay consistent (Definition 6). *)

val known_response : t -> state:string -> inputs:string list -> (string list * string) option
(** [(outputs, destination)] recorded for this state and input set, if any. *)

val refuses : t -> state:string -> inputs:string list -> bool

val num_states : t -> int

val num_transitions : t -> int

val num_refusals : t -> int

val knowledge : t -> int
(** [|T| + |T̄|], the strictly-increasing progress measure asserted by the
    synthesis loop (Theorem 2's termination argument). *)

val unknown_measure : t -> state_bound:int -> int
(** Upper bound on the facts still to learn:
    [state_bound × 2^|I| − knowledge].  Strictly monotonically decreasing
    across learning steps; non-negative while the state bound is honest. *)

val deterministic : t -> bool
(** At most one entry in [T ∪ T̄] per [(state, input set)] — the
    input-deterministic strengthening of the paper's Definition 6 notion. *)

val complete : t -> bool
(** Every [(state, input set)] is either in [T] or refused — no unknown
    interaction remains (Section 2.6). *)

val learn_step :
  t -> pre:string -> inputs:string list -> outputs:string list -> post:string -> t
(** One observed execution step (Definition 11, restricted to the step-wise
    form produced by deterministic replay).  No-op when already known. *)

val learn_observation : t -> Mechaml_legacy.Observation.t -> t
(** Merge a full observation: every executed step via {!learn_step}
    (Definition 11), plus the final refusal if the run blocked
    (Definition 12). *)

val to_automaton : t -> Mechaml_ts.Automaton.t
(** The underlying automaton [(S, I, O, T, Q)], without labels — used for
    DOT export and statistics.  State names are preserved. *)

val pp : Format.formatter -> t -> unit
