(** Multiple legacy components (the extension sketched in the paper's
    conclusion, Section 7: "the approach can be extended to multiple legacy
    components by using the parallel combination of multiple behavioral
    models; the iterative synthesis will then improve all these models in
    parallel").

    Components are combined into one virtual black box whose observed
    behaviour is their synchronous product, and the standard loop runs
    against it; every learned fact about the product is then split back into
    per-component incomplete automata, so each component's model improves in
    parallel, exactly as the paper anticipates.

    Restriction: the combined components must not communicate with each
    other directly — all their signals connect to the context.  (Direct
    legacy-to-legacy links would make a single synchronous step of the
    virtual box depend on its own outputs.) *)

val combine : Mechaml_legacy.Blackbox.t list -> Mechaml_legacy.Blackbox.t
(** The virtual black box: inputs/outputs are the disjoint unions, a step
    feeds each component its share of the inputs and joins the outputs, a
    refusal by any component refuses the joint interaction, and the probed
    state is the tuple of component states (joined with [&]).  Raises
    [Invalid_argument] on fewer than two components or overlapping signal
    alphabets. *)

type result = {
  loop : Loop.result;  (** the verdict and history of the combined loop *)
  component_models : (string * Incomplete.t) list;
      (** the learned product model split back per component, keyed by
          component name *)
}

val run :
  ?strategy:Mechaml_mc.Witness.strategy ->
  ?label_of:(string -> string list) ->
  ?max_iterations:int ->
  context:Mechaml_ts.Automaton.t ->
  property:Mechaml_logic.Ctl.t ->
  legacies:Mechaml_legacy.Blackbox.t list ->
  unit ->
  result
(** Like {!Loop.run} on the combined box.  [label_of] receives the joint
    state name ([s1&s2]); {!joint_labels} builds one from per-component
    conventions. *)

val joint_labels : (string -> string list) list -> string -> string list
(** [joint_labels [f1; …; fk]] splits a joint state name on [&] and applies
    [fi] to the i-th part, concatenating the results. *)

val split_model :
  components:Mechaml_legacy.Blackbox.t list -> Incomplete.t -> (string * Incomplete.t) list
(** Project a learned product model onto each component: product states
    [s1&…&sk] contribute state [si] to the i-th model and transitions
    project their interactions onto the component's signal alphabet.
    Which component caused a joint refusal is not observable from outside,
    so a refusal is attributed to component [i] only when every other
    component's projected response at its state is already known (it
    therefore cannot be the refuser). *)
