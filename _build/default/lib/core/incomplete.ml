module Automaton = Mechaml_ts.Automaton
module Observation = Mechaml_legacy.Observation

type interaction = { in_signals : string list; out_signals : string list }

let interaction ~inputs ~outputs =
  { in_signals = List.sort_uniq compare inputs; out_signals = List.sort_uniq compare outputs }

type t = {
  name : string;
  input_signals : string list;
  output_signals : string list;
  states : string list;
  initial : string list;
  trans : (string * interaction * string) list;
  refusals : (string * string list) list;
}

let create ~name ~inputs ~outputs ~initial_state =
  {
    name;
    input_signals = inputs;
    output_signals = outputs;
    states = [ initial_state ];
    initial = [ initial_state ];
    trans = [];
    refusals = [];
  }

let check_signals what universe names =
  List.iter
    (fun n ->
      if not (List.mem n universe) then
        invalid_arg (Printf.sprintf "Incomplete: unknown %s signal %S" what n))
    names

let norm = List.sort_uniq compare

let known_response t ~state ~inputs =
  let inputs = norm inputs in
  List.find_map
    (fun (s, i, d) ->
      if s = state && i.in_signals = inputs then Some (i.out_signals, d) else None)
    t.trans

let refuses t ~state ~inputs =
  let inputs = norm inputs in
  List.exists (fun (s, i) -> s = state && i = inputs) t.refusals

let add_state_if_new t s = if List.mem s t.states then t else { t with states = t.states @ [ s ] }

let add_transition t ~src i ~dst =
  check_signals "input" t.input_signals i.in_signals;
  check_signals "output" t.output_signals i.out_signals;
  if refuses t ~state:src ~inputs:i.in_signals then
    invalid_arg
      (Printf.sprintf
         "Incomplete.add_transition: (%s, {%s}) is recorded as refused — T and T̄ inconsistent"
         src
         (String.concat "," i.in_signals));
  match known_response t ~state:src ~inputs:i.in_signals with
  | Some (outs, d) when outs = i.out_signals && d = dst -> t (* already known *)
  | Some (outs, d) ->
    invalid_arg
      (Printf.sprintf
         "Incomplete.add_transition: %s already responds to {%s} with {%s} -> %s; observed \
          {%s} -> %s contradicts input determinism"
         src
         (String.concat "," i.in_signals)
         (String.concat "," outs)
         d
         (String.concat "," i.out_signals)
         dst)
  | None ->
    let t = add_state_if_new (add_state_if_new t src) dst in
    { t with trans = t.trans @ [ (src, i, dst) ] }

let add_refusal t ~state ~inputs =
  check_signals "input" t.input_signals inputs;
  let inputs = norm inputs in
  match known_response t ~state ~inputs with
  | Some _ ->
    invalid_arg
      (Printf.sprintf
         "Incomplete.add_refusal: %s has a known transition on {%s} — T and T̄ inconsistent"
         state (String.concat "," inputs))
  | None ->
    if refuses t ~state ~inputs then t
    else
      let t = add_state_if_new t state in
      { t with refusals = t.refusals @ [ (state, inputs) ] }

let num_states t = List.length t.states

let num_transitions t = List.length t.trans

let num_refusals t = List.length t.refusals

let knowledge t = num_transitions t + num_refusals t

let unknown_measure t ~state_bound =
  (state_bound * (1 lsl List.length t.input_signals)) - knowledge t

let deterministic t =
  let keys =
    List.map (fun (s, i, _) -> (s, i.in_signals)) t.trans @ t.refusals
  in
  List.length keys = List.length (List.sort_uniq compare keys)

let complete t =
  let num_inputs = 1 lsl List.length t.input_signals in
  List.for_all
    (fun s ->
      let known =
        List.length (List.filter (fun (s', _, _) -> s' = s) t.trans)
        + List.length (List.filter (fun (s', _) -> s' = s) t.refusals)
      in
      known = num_inputs)
    t.states

let learn_step t ~pre ~inputs ~outputs ~post =
  add_transition t ~src:pre (interaction ~inputs ~outputs) ~dst:post

let learn_observation t (o : Observation.t) =
  let t =
    List.fold_left
      (fun t (s : Observation.step) ->
        learn_step t ~pre:s.pre_state ~inputs:s.inputs ~outputs:s.outputs ~post:s.post_state)
      t o.steps
  in
  match o.refused with
  | None -> t
  | Some (state, inputs) -> add_refusal t ~state ~inputs

let to_automaton t =
  let b =
    Automaton.Builder.create ~name:t.name ~inputs:t.input_signals ~outputs:t.output_signals ()
  in
  List.iter (fun s -> ignore (Automaton.Builder.add_state b s)) t.states;
  List.iter
    (fun (src, i, dst) ->
      Automaton.Builder.add_trans b ~src ~inputs:i.in_signals ~outputs:i.out_signals ~dst ())
    t.trans;
  Automaton.Builder.set_initial b t.initial;
  Automaton.Builder.build b

let pp ppf t =
  Format.fprintf ppf "@[<v>incomplete %s (%d states, %d transitions, %d refusals)@," t.name
    (num_states t) (num_transitions t) (num_refusals t);
  List.iter
    (fun (src, i, dst) ->
      Format.fprintf ppf "  %s --{%s}/{%s}--> %s@," src
        (String.concat "," i.in_signals)
        (String.concat "," i.out_signals)
        dst)
    t.trans;
  List.iter
    (fun (s, ins) -> Format.fprintf ppf "  %s refuses {%s}@," s (String.concat "," ins))
    t.refusals;
  Format.fprintf ppf "@]"
