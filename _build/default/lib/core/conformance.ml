module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe

type violation =
  | Unknown_state of string
  | Missing_transition of string * Incomplete.interaction
  | Refusal_not_real of string * string list
  | Initial_mismatch

let check (m : Incomplete.t) (real : Automaton.t) =
  let ( let* ) = Result.bind in
  let state_of name =
    match Automaton.state_index_opt real name with
    | Some s -> Ok s
    | None -> Error (Unknown_state name)
  in
  let* () =
    if
      List.for_all
        (fun q -> List.exists (fun r -> Automaton.state_name real r = q) real.Automaton.initial)
        m.Incomplete.initial
    then Ok ()
    else Error Initial_mismatch
  in
  let* () =
    List.fold_left
      (fun acc (src, (i : Incomplete.interaction), dst) ->
        let* () = acc in
        let* s = state_of src in
        let a = Universe.set_of_names real.Automaton.inputs i.in_signals in
        let b = Universe.set_of_names real.Automaton.outputs i.out_signals in
        if List.exists (fun d -> Automaton.state_name real d = dst) (Automaton.successors real s a b)
        then Ok ()
        else Error (Missing_transition (src, i)))
      (Ok ()) m.Incomplete.trans
  in
  List.fold_left
    (fun acc (state, inputs) ->
      let* () = acc in
      let* s = state_of state in
      let a = Universe.set_of_names real.Automaton.inputs inputs in
      let accepts_input =
        List.exists
          (fun (t : Automaton.trans) -> Mechaml_util.Bitset.equal t.input a)
          (Automaton.transitions_from real s)
      in
      if accepts_input then Error (Refusal_not_real (state, inputs)) else Ok ())
    (Ok ()) m.Incomplete.refusals

let conforms m real = Result.is_ok (check m real)
