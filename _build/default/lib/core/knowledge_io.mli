(** Persistence for learned behavioural models.

    What the loop learns about a legacy component is expensive knowledge —
    every fact cost a test execution.  This module serialises incomplete
    automata (transitions {e and} refusals) in a line format compatible with
    {!Mechaml_ts.Textio}, so a later session can seed
    {!Loop.run}[ ~initial_knowledge] with everything already established
    (grey-box continuation), and CI can archive the learned models.

    Format, extending the textio directives:
    {v
    incomplete shuttle2
    inputs convoyProposalRejected startConvoy
    outputs convoyProposal
    initial noConvoy::default
    trans noConvoy::default : / convoyProposal -> noConvoy::wait
    refuse noConvoy::wait :
    refuse convoy : convoyProposalRejected
    v}
    ([refuse <state> : <input signals>] records a T̄ entry; an empty signal
    list is the refusal of the silent interaction.) *)

type error = { line : int; message : string }

val print : Incomplete.t -> string

val parse : string -> (Incomplete.t, error) result

val parse_exn : string -> Incomplete.t

val save : path:string -> Incomplete.t -> unit

val load : path:string -> (Incomplete.t, error) result
