(** Observation conformance (Definition 10).

    An incomplete automaton [M] is observation conforming to a concrete
    component [M_r] iff [\[M\] ⊆ \[M_r\]] — every (state-annotated) run of
    [M], including its explicit deadlock runs, is a run of [M_r].  Because
    observations name the real states (deterministic replay probes them),
    conformance reduces to checking each recorded fact against [M_r].

    This module exists for validation: the synthesis loop never sees [M_r],
    but the test suite uses {!check} to mechanise Theorem 1 and Lemma 7. *)

type violation =
  | Unknown_state of string
  | Missing_transition of string * Incomplete.interaction
  | Refusal_not_real of string * string list
      (** [T̄] claims a refusal the concrete component does not exhibit *)
  | Initial_mismatch

val check : Incomplete.t -> Mechaml_ts.Automaton.t -> (unit, violation) result
(** The concrete automaton is matched by state {e names}. *)

val conforms : Incomplete.t -> Mechaml_ts.Automaton.t -> bool
