(** Initial behavior synthesis (Section 3).

    From the known structural interface of the legacy component — its signal
    names and initial state, read off the architectural model or
    straightforwardly reverse-engineered — build the trivial incomplete
    automaton [M_l⁰] (one state, nothing known) and its chaotic closure
    [M_a⁰ = chaos(M_l⁰)], which by Lemma 4 is a safe abstraction of the
    legacy component: [M_r ⊑ M_a⁰]. *)

val initial_model : Mechaml_legacy.Blackbox.t -> Incomplete.t
(** [M_l⁰] (Fig. 4(a)). *)

val initial_abstraction :
  ?label_of:(string -> string list) -> Mechaml_legacy.Blackbox.t -> Mechaml_ts.Automaton.t
(** [M_a⁰ = chaos(M_l⁰)] (Fig. 4(b)). *)
