lib/core/coverage.mli: Format Incomplete Mechaml_ts
