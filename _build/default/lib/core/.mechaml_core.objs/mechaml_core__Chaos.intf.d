lib/core/chaos.mli: Incomplete Mechaml_ts
