lib/core/conformance.ml: Incomplete List Mechaml_ts Mechaml_util Result
