lib/core/synthesis.ml: Chaos Incomplete Mechaml_legacy
