lib/core/knowledge_io.ml: Buffer Fun Incomplete List Printf Stdlib String
