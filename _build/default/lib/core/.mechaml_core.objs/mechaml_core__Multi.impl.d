lib/core/multi.ml: Incomplete List Loop Mechaml_legacy Printf String
