lib/core/incomplete.mli: Format Mechaml_legacy Mechaml_ts
