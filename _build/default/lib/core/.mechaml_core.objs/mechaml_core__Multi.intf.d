lib/core/multi.mli: Incomplete Loop Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts
