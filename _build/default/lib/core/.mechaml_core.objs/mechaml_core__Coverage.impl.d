lib/core/coverage.ml: Format Hashtbl Incomplete List Mechaml_ts
