lib/core/conformance.mli: Incomplete Mechaml_ts
