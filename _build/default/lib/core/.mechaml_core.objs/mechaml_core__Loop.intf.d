lib/core/loop.mli: Format Incomplete Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts
