lib/core/loop.ml: Chaos Format Incomplete List Logs Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts Printf Synthesis
