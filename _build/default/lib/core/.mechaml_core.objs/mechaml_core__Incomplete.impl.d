lib/core/incomplete.ml: Format List Mechaml_legacy Mechaml_ts Printf String
