lib/core/synthesis.mli: Incomplete Mechaml_legacy Mechaml_ts
