lib/core/knowledge_io.mli: Incomplete
