lib/core/chaos.ml: Incomplete List Mechaml_ts Printf String
