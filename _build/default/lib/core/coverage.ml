module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose

type t = {
  relevant_interactions : int;
  known_relevant : int;
  known_facts : int;
  learned_states : int;
  state_bound : int;
  interaction_space : int;
}

let analyse ~(context : Automaton.t) ~state_bound (m : Incomplete.t) =
  let learned = Incomplete.to_automaton m in
  let product = Compose.parallel context learned in
  let offered = Hashtbl.create 64 in
  let n = Automaton.num_states product.Compose.auto in
  for p = 0 to n - 1 do
    let c = Compose.left_state product p and s = Compose.right_state product p in
    let state_name = Automaton.state_name learned s in
    List.iter
      (fun (t : Automaton.trans) ->
        (* the input set this context transition would feed the component *)
        let a =
          List.filter
            (fun sig_ -> List.mem sig_ m.Incomplete.input_signals)
            (Universe.names_of_set context.Automaton.outputs t.output)
          |> List.sort_uniq compare
        in
        Hashtbl.replace offered (state_name, a) ())
      (Automaton.transitions_from context c)
  done;
  let relevant_interactions = Hashtbl.length offered in
  let known_relevant =
    Hashtbl.fold
      (fun (state, inputs) () acc ->
        if
          Incomplete.known_response m ~state ~inputs <> None
          || Incomplete.refuses m ~state ~inputs
        then acc + 1
        else acc)
      offered 0
  in
  {
    relevant_interactions;
    known_relevant;
    known_facts = Incomplete.knowledge m;
    learned_states = Incomplete.num_states m;
    state_bound;
    interaction_space = state_bound * (1 lsl List.length m.Incomplete.input_signals);
  }

let relevant_fraction t =
  if t.relevant_interactions = 0 then 1.0
  else float_of_int t.known_relevant /. float_of_int t.relevant_interactions

let explored_fraction t =
  if t.interaction_space = 0 then 1.0
  else float_of_int t.known_facts /. float_of_int t.interaction_space

let pp ppf t =
  Format.fprintf ppf
    "coverage: %d/%d context-relevant interactions known; %d facts of a %d-fact component \
     space (%.1f%%); %d/%d states discovered"
    t.known_relevant t.relevant_interactions t.known_facts t.interaction_space
    (100.0 *. explored_fraction t)
    t.learned_states t.state_bound
