module Blackbox = Mechaml_legacy.Blackbox

let initial_model (box : Blackbox.t) =
  Incomplete.create ~name:box.Blackbox.name ~inputs:box.Blackbox.input_signals
    ~outputs:box.Blackbox.output_signals ~initial_state:box.Blackbox.initial_state

let initial_abstraction ?label_of box = Chaos.closure ?label_of (initial_model box)
