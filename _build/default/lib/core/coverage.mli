(** Context-relative coverage of a learned model.

    The paper's central efficiency claim is that "the whole behavior of the
    legacy system is not required but only the relevant part for the
    collaboration" (Section 6).  This module makes the claim measurable for
    a concrete run: compose the context with the learned behaviour and count
    which (state, input set) interactions the context can actually drive the
    component into — the {e relevant} interactions — and how many of them
    are already known. *)

type t = {
  relevant_interactions : int;
      (** distinct (learned state, input set) pairs the context offers along
          the reachable part of context ∥ learned model *)
  known_relevant : int;
      (** of those, already recorded in T or T̄ *)
  known_facts : int;     (** |T| + |T̄| overall *)
  learned_states : int;
  state_bound : int;     (** the reverse-engineered component bound *)
  interaction_space : int;
      (** the whole-component fact space [state_bound × 2^|I|] a full
          learner would have to certify *)
}

val analyse :
  context:Mechaml_ts.Automaton.t -> state_bound:int -> Incomplete.t -> t

val relevant_fraction : t -> float
(** [known_relevant / relevant_interactions] — 1.0 when the loop has learned
    everything the context can reach (the state at a [Proved] verdict). *)

val explored_fraction : t -> float
(** [known_facts / interaction_space] — how little of the whole component was
    needed. *)

val pp : Format.formatter -> t -> unit
