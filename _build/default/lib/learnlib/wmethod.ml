let transition_cover (m : Mealy.t) =
  let k = List.length m.Mealy.alphabet in
  (* BFS spanning tree: shortest access word per state. *)
  let n = Mealy.num_states m in
  let access = Array.make n None in
  access.(m.Mealy.initial) <- Some [];
  let queue = Queue.create () in
  Queue.add m.Mealy.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let w = Option.get access.(s) in
    for a = 0 to k - 1 do
      let _, d = Mealy.step m s a in
      if access.(d) = None then begin
        access.(d) <- Some (w @ [ a ]);
        Queue.add d queue
      end
    done
  done;
  let accesses = Array.to_list access |> List.filter_map Fun.id in
  let extensions = List.concat_map (fun w -> List.init k (fun a -> w @ [ a ])) accesses in
  List.sort_uniq compare (([] :: accesses) @ extensions)

let middles ~k ~extra_states =
  (* Σ^0 ∪ Σ^1 ∪ … ∪ Σ^extra *)
  let rec grow acc words = function
    | 0 -> acc
    | n ->
      let longer = List.concat_map (fun w -> List.init k (fun a -> w @ [ a ])) words in
      grow (acc @ longer) longer (n - 1)
  in
  grow [ [] ] [ [] ] extra_states

let characterization m =
  match Mealy.distinguishing_words m with
  | [] ->
    (* A single behavioural class still needs a probe word so the suite
       exercises outputs; a single symbol suffices. *)
    if m.Mealy.alphabet = [] then [ [] ] else [ [ 0 ] ]
  | words -> words

let suite ~hypothesis ~extra_states =
  let k = List.length hypothesis.Mealy.alphabet in
  let p = transition_cover hypothesis in
  let z =
    List.concat_map
      (fun mid -> List.map (fun w -> mid @ w) (characterization hypothesis))
      (middles ~k ~extra_states)
  in
  List.concat_map (fun prefix -> List.map (fun suffix -> prefix @ suffix) z) p
  |> List.sort_uniq compare
  |> List.sort (fun a b -> compare (List.length a, a) (List.length b, b))

let suite_size ~hypothesis ~extra_states =
  let words = suite ~hypothesis ~extra_states in
  (List.length words, List.fold_left (fun acc w -> acc + List.length w) 0 words)

let find_counterexample oracle ~hypothesis ~extra_states =
  Oracle.count_equivalence_query oracle;
  List.find_opt
    (fun word -> Oracle.query oracle word <> Mealy.run_word hypothesis word)
    (suite ~hypothesis ~extra_states)
