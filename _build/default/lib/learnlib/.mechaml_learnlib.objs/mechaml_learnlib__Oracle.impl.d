lib/learnlib/oracle.ml: Hashtbl List Mealy Mechaml_legacy
