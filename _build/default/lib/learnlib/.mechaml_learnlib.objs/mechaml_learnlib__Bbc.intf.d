lib/learnlib/bbc.mli: Lstar Mealy Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts
