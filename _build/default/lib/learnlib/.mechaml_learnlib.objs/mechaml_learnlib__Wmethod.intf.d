lib/learnlib/wmethod.mli: Mealy Oracle
