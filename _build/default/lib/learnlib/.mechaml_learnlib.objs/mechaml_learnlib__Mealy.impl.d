lib/learnlib/mealy.ml: Array Format Hashtbl List Mechaml_ts Mechaml_util Printf Queue String
