lib/learnlib/amc.ml: List Mealy Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts Obs_table Oracle Printf Wmethod
