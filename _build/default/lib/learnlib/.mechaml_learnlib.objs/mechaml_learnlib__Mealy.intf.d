lib/learnlib/mealy.mli: Format Mechaml_ts
