lib/learnlib/obs_table.mli: Mealy Oracle
