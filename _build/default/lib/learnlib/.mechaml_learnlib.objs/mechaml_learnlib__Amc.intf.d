lib/learnlib/amc.mli: Mechaml_legacy Mechaml_logic Mechaml_ts Oracle
