lib/learnlib/dfa.mli:
