lib/learnlib/lstar.ml: List Mealy Obs_table Oracle Wmethod
