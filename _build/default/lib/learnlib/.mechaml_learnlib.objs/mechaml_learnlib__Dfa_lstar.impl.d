lib/learnlib/dfa_lstar.ml: Array Dfa Fun Hashtbl List
