lib/learnlib/obs_table.ml: Array Fun Hashtbl List Mealy Oracle
