lib/learnlib/wmethod.ml: Array Fun List Mealy Option Oracle Queue
