lib/learnlib/dfa.ml: Array Hashtbl List Mechaml_util Printf Queue
