lib/learnlib/dfa_lstar.mli: Dfa
