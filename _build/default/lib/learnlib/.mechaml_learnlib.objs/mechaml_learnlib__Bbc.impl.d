lib/learnlib/bbc.ml: List Lstar Mealy Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_ts
