lib/learnlib/lstar.mli: Mealy Mechaml_legacy Obs_table Oracle
