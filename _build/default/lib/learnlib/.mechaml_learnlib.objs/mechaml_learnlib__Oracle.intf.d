lib/learnlib/oracle.mli: Mealy Mechaml_legacy
