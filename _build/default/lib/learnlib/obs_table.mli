(** Angluin's observation table (Section 6, "Angluin's Algorithm"), in its
    Mealy-machine form.

    The table's rows are indexed by access words (prefixes leading to states)
    and its columns by suffixes distinguishing states.  A row's content is
    the output behaviour of the component after the access word, on each
    suffix.  When the table is {e closed} (every one-step extension of a row
    appears among the rows) and {e consistent} (equal rows stay equal under
    every extension), it induces a hypothesis machine. *)

type t

val create : Oracle.t -> t
(** [S = {ε}], [E = Σ] (all single-symbol suffixes). *)

val make_closed_and_consistent : t -> unit
(** Fill the table via output queries until closed and consistent. *)

val hypothesis : t -> Mealy.t
(** Requires the table to be closed and consistent (call
    {!make_closed_and_consistent} first); raises [Failure] otherwise. *)

val hypothesis_with_access : t -> Mealy.t * int list list
(** The hypothesis together with one access word per hypothesis state
    (index-aligned) — what Rivest–Schapire counterexample processing needs
    to re-route prefixes through the hypothesis. *)

val add_suffix_column : t -> int list -> unit
(** Add a distinguishing suffix directly (used by Rivest–Schapire). *)

type ce_processing =
  | Angluin_prefixes
      (** all prefixes of the counterexample become access words — Angluin's
          original treatment (larger table, fewer columns) *)
  | Maler_pnueli_suffixes
      (** all suffixes become distinguishing columns — keeps the access set
          near the true state count (Maler–Pnueli) *)
  | Rivest_schapire
      (** locate the single distinguishing suffix by re-routing prefixes
          through the hypothesis and add only that column.  Needs the
          hypothesis, so it is realised in {!Lstar.learn}; passed directly to
          {!add_counterexample} it degrades to {!Maler_pnueli_suffixes}. *)

val add_counterexample : ?processing:ce_processing -> t -> int list -> unit
(** Merge a distinguishing word returned by an equivalence query.  Default
    processing is {!Angluin_prefixes}. *)

val size : t -> int * int
(** (number of access words incl. one-step extensions, number of suffixes). *)
