type t = {
  oracle : Oracle.t;
  k : int;
  mutable access : int list list; (* S, prefix-closed *)
  mutable suffixes : int list list; (* E, non-empty words *)
  (* Row contents are memoized per (access word, suffix-set version): the
     closedness and consistency sweeps recompute rows heavily. *)
  row_cache : (int list, int * Mealy.output list list) Hashtbl.t;
  mutable version : int;
}

let create oracle =
  let k = List.length (Oracle.alphabet oracle) in
  {
    oracle;
    k;
    access = [ [] ];
    suffixes = List.init k (fun a -> [ a ]);
    row_cache = Hashtbl.create 256;
    version = 0;
  }

(* The row of an access word: its output behaviour on every suffix.  Only the
   outputs caused by the suffix itself matter. *)
let row t u =
  match Hashtbl.find_opt t.row_cache u with
  | Some (v, r) when v = t.version -> r
  | _ ->
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
    let n = List.length u in
    let r = List.map (fun e -> drop n (Oracle.query t.oracle (u @ e))) t.suffixes in
    Hashtbl.replace t.row_cache u (t.version, r);
    r

let rows_equal t u v = row t u = row t v

let extensions t u = List.init t.k (fun a -> u @ [ a ])

let find_unclosed t =
  List.find_map
    (fun u ->
      List.find_map
        (fun ua ->
          if List.exists (fun v -> rows_equal t ua v) t.access then None else Some ua)
        (extensions t u))
    t.access

let find_inconsistent t =
  let rec pairs = function
    | [] -> None
    | u :: rest -> (
      match
        List.find_map
          (fun v ->
            if rows_equal t u v then
              (* Equal rows must stay equal under every one-symbol extension;
                 a violation yields the new suffix a·e. *)
              List.find_map
                (fun a ->
                  let ru = row t (u @ [ a ]) and rv = row t (v @ [ a ]) in
                  let rec first_diff es rus rvs =
                    match (es, rus, rvs) with
                    | e :: es', x :: rus', y :: rvs' ->
                      if x <> y then Some (a :: e) else first_diff es' rus' rvs'
                    | _ -> None
                  in
                  first_diff t.suffixes ru rv)
                (List.init t.k Fun.id)
            else None)
          rest
      with
      | Some suffix -> Some suffix
      | None -> pairs rest)
  in
  pairs t.access

let add_suffix t suffix =
  if not (List.mem suffix t.suffixes) then begin
    t.suffixes <- t.suffixes @ [ suffix ];
    t.version <- t.version + 1
  end

let make_closed_and_consistent t =
  let continue = ref true in
  while !continue do
    match find_unclosed t with
    | Some ua -> t.access <- t.access @ [ ua ]
    | None -> (
      match find_inconsistent t with
      | Some suffix -> add_suffix t suffix
      | None -> continue := false)
  done

let hypothesis_with_access t =
  (* Distinct rows among the access words become states; the first access
     word with a given row is its representative. *)
  let reps =
    List.fold_left
      (fun reps u -> if List.exists (fun v -> rows_equal t u v) reps then reps else reps @ [ u ])
      [] t.access
  in
  let state_of u =
    let rec go i = function
      | [] -> failwith "Obs_table.hypothesis: table is not closed"
      | v :: rest -> if rows_equal t u v then i else go (i + 1) rest
    in
    go 0 reps
  in
  let k = t.k in
  let trans =
    Array.of_list
      (List.map
         (fun u ->
           Array.init k (fun a ->
               let out = Oracle.last_output t.oracle (u @ [ a ]) in
               let dst = state_of (u @ [ a ]) in
               match out with
               | Mealy.Blocked ->
                 (* A refused symbol leaves the component in place; the
                    table sees row(u·a) = row(u). *)
                 (Mealy.Blocked, state_of u)
               | o -> (o, dst)))
         reps)
  in
  (Mealy.create ~alphabet:(Oracle.alphabet t.oracle) ~trans ~initial:(state_of []) (), reps)

let hypothesis t = fst (hypothesis_with_access t)

let add_suffix_column t suffix = add_suffix t suffix

type ce_processing = Angluin_prefixes | Maler_pnueli_suffixes | Rivest_schapire

let add_counterexample ?(processing = Angluin_prefixes) t w =
  match processing with
  | Angluin_prefixes ->
    let rec prefixes acc = function
      | [] -> List.rev acc
      | a :: rest ->
        let p = match acc with [] -> [ a ] | last :: _ -> last @ [ a ] in
        prefixes (p :: acc) rest
    in
    List.iter
      (fun p -> if not (List.mem p t.access) then t.access <- t.access @ [ p ])
      (prefixes [] w)
  | Maler_pnueli_suffixes | Rivest_schapire ->
    let rec suffixes = function
      | [] -> []
      | _ :: rest as word -> word :: suffixes rest
    in
    List.iter (add_suffix t) (suffixes w)

let size t = (List.length t.access * (t.k + 1), List.length t.suffixes)
