type teacher = {
  member : int list -> bool;
  equiv : Dfa.t -> int list option;
}

type stats = { membership_queries : int; equivalence_queries : int }

let teacher_of_dfa target =
  let cache = Hashtbl.create 256 in
  let membership = ref 0 and equivalence = ref 0 in
  let member w =
    match Hashtbl.find_opt cache w with
    | Some v -> v
    | None ->
      incr membership;
      let v = Dfa.accepts target w in
      Hashtbl.add cache w v;
      v
  in
  let equiv hyp =
    incr equivalence;
    Dfa.equivalent target hyp
  in
  ( { member; equiv },
    fun () -> { membership_queries = !membership; equivalence_queries = !equivalence } )

type result = {
  hypothesis : Dfa.t;
  rounds : int;
  table_rows : int;
  table_columns : int;
}

(* The observation table: access words S (prefix-closed), suffixes E
   (suffix-closed, ε ∈ E), cell (u, e) = member (u · e). *)
type table = {
  k : int;
  member : int list -> bool;
  mutable access : int list list;
  mutable suffixes : int list list;
}

let row t u = List.map (fun e -> t.member (u @ e)) t.suffixes

let rows_equal t u v = row t u = row t v

let extensions t u = List.init t.k (fun a -> u @ [ a ])

let find_unclosed t =
  List.find_map
    (fun u ->
      List.find_map
        (fun ua -> if List.exists (rows_equal t ua) t.access then None else Some ua)
        (extensions t u))
    t.access

let find_inconsistent t =
  let rec pairs = function
    | [] -> None
    | u :: rest ->
      (match
         List.find_map
           (fun v ->
             if rows_equal t u v then
               List.find_map
                 (fun a ->
                   let ru = row t (u @ [ a ]) and rv = row t (v @ [ a ]) in
                   let rec diff es xs ys =
                     match (es, xs, ys) with
                     | e :: es', x :: xs', y :: ys' ->
                       if x <> y then Some (a :: e) else diff es' xs' ys'
                     | _ -> None
                   in
                   diff t.suffixes ru rv)
                 (List.init t.k Fun.id)
             else None)
           rest
       with
      | Some s -> Some s
      | None -> pairs rest)
  in
  pairs t.access

let close_table t =
  let continue = ref true in
  while !continue do
    match find_unclosed t with
    | Some ua -> t.access <- t.access @ [ ua ]
    | None -> (
      match find_inconsistent t with
      | Some suffix ->
        if not (List.mem suffix t.suffixes) then t.suffixes <- t.suffixes @ [ suffix ]
        else continue := false
      | None -> continue := false)
  done

let hypothesis t ~alphabet =
  let reps =
    List.fold_left
      (fun reps u -> if List.exists (rows_equal t u) reps then reps else reps @ [ u ])
      [] t.access
  in
  let state_of u =
    let rec go i = function
      | [] -> failwith "Dfa_lstar: table not closed"
      | v :: rest -> if rows_equal t u v then i else go (i + 1) rest
    in
    go 0 reps
  in
  let delta =
    Array.of_list (List.map (fun u -> Array.init t.k (fun a -> state_of (u @ [ a ]))) reps)
  in
  let accepting = Array.of_list (List.map (fun u -> t.member u) reps) in
  Dfa.create ~alphabet ~delta ~accepting ~initial:(state_of []) ()

let add_counterexample t w =
  (* Angluin's original treatment: every prefix becomes an access word. *)
  let rec prefixes acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let p = match acc with [] -> [ a ] | last :: _ -> last @ [ a ] in
      prefixes (p :: acc) rest
  in
  List.iter
    (fun p -> if not (List.mem p t.access) then t.access <- t.access @ [ p ])
    (prefixes [] w)

let learn ~alphabet ~(teacher : teacher) ?(max_rounds = 1000) () =
  let t =
    { k = List.length alphabet; member = teacher.member; access = [ [] ]; suffixes = [ [] ] }
  in
  let rec go rounds =
    if rounds > max_rounds then failwith "Dfa_lstar.learn: exceeded max_rounds";
    close_table t;
    let hyp = hypothesis t ~alphabet in
    match teacher.equiv hyp with
    | None -> (hyp, rounds)
    | Some w ->
      add_counterexample t w;
      go (rounds + 1)
  in
  let hypothesis, rounds = go 1 in
  {
    hypothesis;
    rounds;
    table_rows = List.length t.access * (t.k + 1);
    table_columns = List.length t.suffixes;
  }
