(** Black box checking (Peled, Vardi, Yannakakis — Section 6): learn the
    complete component first — L* with a W-method equivalence oracle up to
    the state bound — and model check the learned model once.

    This is the "synthesize the whole behavior, then find conflicts"
    strategy the paper contrasts with; its cost is dominated by the
    conformance-testing equivalence queries (EXP-T1). *)

type result = {
  outcome : Mechaml_mc.Checker.outcome;
  learned : Mealy.t;
  lstar : Lstar.result;
}

val verify :
  box:Mechaml_legacy.Blackbox.t ->
  context:Mechaml_ts.Automaton.t ->
  ?property:Mechaml_logic.Ctl.t ->
  ?label_of:(string -> string list) ->
  alphabet:string list list ->
  state_bound:int ->
  unit ->
  result
(** Learns to convergence, then checks [property ∧ ¬δ] on
    context ∥ learned model.  Unlike AMC, a [label_of] convention may be
    supplied: learned states are named [h<i>] and carry no semantic names, so
    by default only context propositions and deadlock freedom are checkable;
    [label_of] is applied to the hypothesis state names if given. *)
