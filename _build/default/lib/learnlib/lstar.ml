type equivalence = Wmethod of { extra_states : int } | Perfect of Mealy.t

type result = {
  hypothesis : Mealy.t;
  rounds : int;
  stats : Oracle.stats;
  table_rows : int;
  table_columns : int;
}

(* Rivest–Schapire: re-route the counterexample's prefixes through the
   hypothesis' access words and locate one suffix on which the behaviours
   flip; that suffix alone is a new distinguishing column.  Returns [false]
   when no usable (non-empty) suffix is found — callers fall back to
   Maler–Pnueli processing, which is always sound. *)
let rivest_schapire ~oracle ~table ~hyp ~access w =
  let n = List.length w in
  let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let tail k l = drop (List.length l - k) l in
  let beta i =
    let q = Mealy.state_after hyp (take i w) in
    let u = List.nth access q in
    tail (n - i) (Oracle.query oracle (u @ drop i w))
  in
  let rec find i =
    if i >= n - 1 then None
    else if tail (n - i - 1) (beta i) <> beta (i + 1) then Some (drop (i + 1) w)
    else find (i + 1)
  in
  match find 0 with
  | Some suffix when suffix <> [] ->
    Obs_table.add_suffix_column table suffix;
    true
  | _ -> false

let learn ~box ~alphabet ~equivalence ?ce_processing ?(max_rounds = 1000) () =
  let oracle = Oracle.create ~box ~alphabet in
  let table = Obs_table.create oracle in
  let rec go rounds =
    if rounds > max_rounds then failwith "Lstar.learn: exceeded max_rounds";
    Obs_table.make_closed_and_consistent table;
    let hyp, access = Obs_table.hypothesis_with_access table in
    let counterexample =
      match equivalence with
      | Wmethod { extra_states } -> Wmethod.find_counterexample oracle ~hypothesis:hyp ~extra_states
      | Perfect truth ->
        Oracle.count_equivalence_query oracle;
        Mealy.equivalent truth hyp
    in
    match counterexample with
    | None -> (hyp, rounds)
    | Some w ->
      (match ce_processing with
      | Some Obs_table.Rivest_schapire ->
        if not (rivest_schapire ~oracle ~table ~hyp ~access w) then
          Obs_table.add_counterexample ~processing:Obs_table.Maler_pnueli_suffixes table w
      | processing -> Obs_table.add_counterexample ?processing table w);
      go (rounds + 1)
  in
  let hypothesis, rounds = go 1 in
  let table_rows, table_columns = Obs_table.size table in
  { hypothesis; rounds; stats = Oracle.stats oracle; table_rows; table_columns }

let alphabet_of_signals ?(include_empty = true) ?(max_set_size = 1) signals =
  let rec subsets k = function
    | [] -> [ [] ]
    | x :: rest ->
      let without = subsets k rest in
      let with_x =
        List.filter_map
          (fun s -> if List.length s < k then Some (x :: s) else None)
          (subsets k rest)
      in
      without @ with_x
  in
  subsets max_set_size signals
  |> List.filter (fun s -> include_empty || s <> [])
  |> List.map (List.sort compare)
  |> List.sort_uniq compare
  |> List.sort (fun a b -> compare (List.length a, a) (List.length b, b))
