(** Angluin's L* (Section 6), the baseline the paper positions itself
    against: it learns the {e whole} component — requiring an equivalence
    oracle realised by exhaustive conformance testing — whereas the paper's
    loop learns only the behaviour the context can exercise and needs no
    equivalence check at all.

    The target concept is the component's complete Mealy semantics over a
    chosen input alphabet (refusals observed as {!Mealy.Blocked}). *)

type equivalence =
  | Wmethod of { extra_states : int }
      (** conformance testing up to [hypothesis states + extra_states] —
          the realistic oracle *)
  | Perfect of Mealy.t
      (** omniscient comparison against a known ground truth (testing only) *)

type result = {
  hypothesis : Mealy.t;
  rounds : int;             (** equivalence queries used *)
  stats : Oracle.stats;
  table_rows : int;
  table_columns : int;
}

val learn :
  box:Mechaml_legacy.Blackbox.t ->
  alphabet:string list list ->
  equivalence:equivalence ->
  ?ce_processing:Obs_table.ce_processing ->
  ?max_rounds:int ->
  unit ->
  result
(** Runs L* to convergence (the equivalence oracle finds no counterexample).
    [max_rounds] (default [1000]) guards against a dishonest ground truth.
    Raises [Failure] when exceeded. *)

val alphabet_of_signals :
  ?include_empty:bool -> ?max_set_size:int -> string list -> string list list
(** Builds an input alphabet from signal names: all subsets up to
    [max_set_size] (default 1), optionally including the empty set (default
    [true] — components may act spontaneously on a silent period). *)
