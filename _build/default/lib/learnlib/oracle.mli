(** The teacher of regular inference (Section 6): answers output queries
    against the real black-box component and keeps the books the baselines
    are compared on (number of queries, resets, symbols fed).

    Queries are cached, so repeated prefixes cost nothing — the counters
    account only for actual executions of the component, which is what the
    paper's cost discussion is about. *)

type stats = {
  output_queries : int;   (** distinct words actually executed *)
  cached_queries : int;   (** answered from the cache *)
  resets : int;           (** component reconnects *)
  symbols : int;          (** total input symbols fed *)
  equivalence_queries : int;
}

type t

val create : box:Mechaml_legacy.Blackbox.t -> alphabet:string list list -> t

val alphabet : t -> string list list

val query : t -> int list -> Mealy.output list
(** Outputs along a word of alphabet indices, starting from a fresh reset.
    A refused symbol yields {!Mealy.Blocked} and leaves the component in
    place (it does not advance). *)

val last_output : t -> int list -> Mealy.output
(** Output of the final symbol of a (non-empty) word. *)

val count_equivalence_query : t -> unit

val stats : t -> stats
