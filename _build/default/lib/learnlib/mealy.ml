module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe

type output = Blocked | Out of string list

type t = {
  alphabet : string list list;
  trans : (output * int) array array;
  initial : int;
}

let num_states m = Array.length m.trans

let create ~alphabet ~trans ?(initial = 0) () =
  let k = List.length alphabet in
  let n = Array.length trans in
  if n = 0 then invalid_arg "Mealy.create: no states";
  if initial < 0 || initial >= n then invalid_arg "Mealy.create: initial state out of range";
  Array.iteri
    (fun s row ->
      if Array.length row <> k then
        invalid_arg (Printf.sprintf "Mealy.create: state %d has %d entries, expected %d" s
          (Array.length row) k);
      Array.iteri
        (fun a (o, d) ->
          if d < 0 || d >= n then invalid_arg "Mealy.create: target out of range";
          if o = Blocked && d <> s then
            invalid_arg
              (Printf.sprintf "Mealy.create: blocked symbol %d at state %d must self-loop" a s))
        row)
    trans;
  { alphabet; trans; initial }

let step m s a = m.trans.(s).(a)

let run_word m w =
  let rec go s acc = function
    | [] -> List.rev acc
    | a :: rest ->
      let o, s' = step m s a in
      go s' (o :: acc) rest
  in
  go m.initial [] w

let state_after m w = List.fold_left (fun s a -> snd (step m s a)) m.initial w

let alphabet_index m symbol =
  let symbol = List.sort_uniq compare symbol in
  let rec go i = function
    | [] -> invalid_arg "Mealy.alphabet_index: symbol not in alphabet"
    | x :: rest -> if List.sort_uniq compare x = symbol then i else go (i + 1) rest
  in
  go 0 m.alphabet

let of_automaton ~alphabet (auto : Automaton.t) =
  if not (Automaton.input_deterministic auto) then
    invalid_arg "Mealy.of_automaton: automaton is not input-deterministic";
  let n = Automaton.num_states auto in
  let k = List.length alphabet in
  let trans =
    Array.init n (fun s ->
        Array.init k (fun ai ->
            let symbol = List.nth alphabet ai in
            let a = Universe.set_of_names auto.Automaton.inputs symbol in
            match
              List.find_opt
                (fun (t : Automaton.trans) -> Mechaml_util.Bitset.equal t.input a)
                (Automaton.transitions_from auto s)
            with
            | None -> (Blocked, s)
            | Some t ->
              (Out (List.sort compare (Universe.names_of_set auto.Automaton.outputs t.output)), t.dst)))
  in
  let initial = match auto.Automaton.initial with [ q ] -> q | _ -> 0 in
  create ~alphabet ~trans ~initial ()

let to_automaton ?(name = "hypothesis") ?(state_name = Printf.sprintf "h%d") m =
  let inputs = List.sort_uniq compare (List.concat m.alphabet) in
  let outputs =
    Array.to_list m.trans
    |> List.concat_map (fun row ->
           Array.to_list row
           |> List.concat_map (function Out o, _ -> o | Blocked, _ -> []))
    |> List.sort_uniq compare
  in
  let b = Automaton.Builder.create ~name ~inputs ~outputs () in
  for s = 0 to num_states m - 1 do
    ignore (Automaton.Builder.add_state b (state_name s))
  done;
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun ai (o, d) ->
          match o with
          | Blocked -> ()
          | Out outs ->
            Automaton.Builder.add_trans b ~src:(state_name s) ~inputs:(List.nth m.alphabet ai)
              ~outputs:outs ~dst:(state_name d) ())
        row)
    m.trans;
  Automaton.Builder.set_initial b [ state_name m.initial ];
  Automaton.Builder.build b

let equivalent a b =
  if a.alphabet <> b.alphabet then invalid_arg "Mealy.equivalent: different alphabets";
  let k = List.length a.alphabet in
  let seen = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (a.initial, b.initial) in
  Hashtbl.add seen start ();
  Queue.add start queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let ((sa, sb) as pair) = Queue.pop queue in
    let ai = ref 0 in
    while !found = None && !ai < k do
      let oa, da = step a sa !ai and ob, db = step b sb !ai in
      if oa <> ob then found := Some (pair, !ai)
      else begin
        let next = (da, db) in
        if not (Hashtbl.mem seen next) then begin
          Hashtbl.add seen next ();
          Hashtbl.add parent next (pair, !ai);
          Queue.add next queue
        end
      end;
      incr ai
    done
  done;
  match !found with
  | None -> None
  | Some (pair, last) ->
    let rec unwind p acc =
      match Hashtbl.find_opt parent p with
      | None -> acc
      | Some (p', a) -> unwind p' (a :: acc)
    in
    Some (unwind pair [] @ [ last ])

(* Pairwise shortest distinguishing words by fixpoint iteration; the
   collected set is a characterization set W for the (reachable part of the)
   machine. *)
let distinguishing_words m =
  let n = num_states m in
  let k = List.length m.alphabet in
  let dist : int list option array array = Array.make_matrix n n None in
  (* Base: pairs separated by a single symbol's output. *)
  for p = 0 to n - 1 do
    for q = 0 to p - 1 do
      let rec find a =
        if a >= k then None
        else if fst (step m p a) <> fst (step m q a) then Some [ a ]
        else find (a + 1)
      in
      dist.(p).(q) <- find 0
    done
  done;
  let get p q = if p = q then None else if p > q then dist.(p).(q) else dist.(q).(p) in
  let set p q w = if p > q then dist.(p).(q) <- Some w else dist.(q).(p) <- Some w in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to n - 1 do
      for q = 0 to p - 1 do
        if dist.(p).(q) = None then begin
          let rec find a =
            if a >= k then None
            else
              let _, dp = step m p a and _, dq = step m q a in
              match get dp dq with Some w -> Some (a :: w) | None -> find (a + 1)
          in
          match find 0 with
          | Some w ->
            set p q w;
            changed := true
          | None -> ()
        end
      done
    done
  done;
  let words = ref [] in
  for p = 0 to n - 1 do
    for q = 0 to p - 1 do
      match dist.(p).(q) with
      | Some w when not (List.mem w !words) -> words := w :: !words
      | _ -> ()
    done
  done;
  !words

let distinguishing_set m =
  List.map (fun w -> List.map (List.nth m.alphabet) w) (distinguishing_words m)

let pp_output ppf = function
  | Blocked -> Format.pp_print_string ppf "⊥"
  | Out o -> Format.fprintf ppf "{%s}" (String.concat "," o)
