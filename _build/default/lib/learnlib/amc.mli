(** Adaptive model checking (Groce, Peled, Yannakakis — Section 6), the
    closest related technique: maintain a learned hypothesis of the black
    box, model check it against the context, validate counterexamples on the
    real system, and fall back to conformance testing before trusting a
    positive verdict.

    The structural contrast with the paper's approach (and the point of
    experiment EXP-T6): AMC's hypothesis is an {e under}-approximation, so a
    passing model-checking run proves nothing until an exhaustive
    equivalence/conformance check has been paid for; the paper's chaotic
    closure is an {e over}-approximation, so a passing run is already a
    proof.  AMC also works on unlabelled hypothesis states, so it can only
    check properties over context propositions and deadlock freedom. *)

type verdict =
  | Holds_up_to_bound of { conformance_words : int }
      (** the property held and a W-method suite up to the state bound found
          no discrepancy *)
  | Real_violation of { kind : [ `Deadlock | `Property ]; inputs : string list list }

type result = {
  verdict : verdict;
  rounds : int;  (** model-checking rounds *)
  hypothesis_states : int;
  stats : Oracle.stats;
}

val verify :
  box:Mechaml_legacy.Blackbox.t ->
  context:Mechaml_ts.Automaton.t ->
  ?property:Mechaml_logic.Ctl.t ->
  alphabet:string list list ->
  state_bound:int ->
  unit ->
  result
(** [property] defaults to [true] (deadlock freedom alone); its propositions
    must all belong to the context automaton (hypothesis states carry no
    labels) — raises [Invalid_argument] otherwise. *)
