module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Run = Mechaml_ts.Run
module Compose = Mechaml_ts.Compose
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker

type verdict =
  | Holds_up_to_bound of { conformance_words : int }
  | Real_violation of { kind : [ `Deadlock | `Property ]; inputs : string list list }

type result = {
  verdict : verdict;
  rounds : int;
  hypothesis_states : int;
  stats : Oracle.stats;
}

let verify ~box ~context ?(property = Ctl.True) ~alphabet ~state_bound () =
  List.iter
    (fun p ->
      if not (Universe.mem context.Automaton.props p) then
        invalid_arg
          (Printf.sprintf
             "Amc.verify: proposition %S is not a context proposition — AMC's hypothesis \
              states are unlabelled" p))
    (Ctl.props property);
  let oracle = Oracle.create ~box ~alphabet in
  let table = Obs_table.create oracle in
  let decode word = List.map (List.nth (Oracle.alphabet oracle)) word in
  let rec round n =
    Obs_table.make_closed_and_consistent table;
    let hyp = Obs_table.hypothesis table in
    let hyp_auto = Mealy.to_automaton ~name:box.Mechaml_legacy.Blackbox.name hyp in
    let product = Compose.parallel context hyp_auto in
    match Checker.check_conjunction product.Compose.auto [ property; Ctl.deadlock_free ] with
    | Checker.Holds -> (
      (* The under-approximation passed: nothing is proven until conformance
         testing validates the hypothesis up to the state bound. *)
      let extra_states = max 0 (state_bound - Mealy.num_states hyp) in
      match Wmethod.find_counterexample oracle ~hypothesis:hyp ~extra_states with
      | Some w ->
        Obs_table.add_counterexample table w;
        round (n + 1)
      | None ->
        let words, _ = Wmethod.suite_size ~hypothesis:hyp ~extra_states in
        (Holds_up_to_bound { conformance_words = words }, n, hyp))
    | Checker.Violated { formula; witness; _ } -> (
      let projected = Compose.project_right product witness in
      let word =
        List.map
          (fun (a, _) ->
            Mealy.alphabet_index hyp (Universe.names_of_set hyp_auto.Automaton.inputs a))
          (Run.trace projected)
      in
      let real = Oracle.query oracle word in
      let predicted = Mealy.run_word hyp word in
      if real <> predicted then begin
        (* Spurious counterexample: the word itself refines the hypothesis. *)
        Obs_table.add_counterexample table word;
        round (n + 1)
      end
      else if not (Ctl.equal formula Ctl.deadlock_free) then
        (Real_violation { kind = `Property; inputs = decode word }, n, hyp)
      else begin
        (* Deadlock claimed at the end of a reproduced trace: every
           interaction the context offers there must really be impossible. *)
        let c_end = Compose.left_state product (Run.final_state witness) in
        let candidates =
          List.filter_map
            (fun (t : Automaton.trans) ->
              let a_names =
                List.filter
                  (fun s -> List.mem s box.Mechaml_legacy.Blackbox.input_signals)
                  (Universe.names_of_set context.Automaton.outputs t.output)
                |> List.sort compare
              in
              let b_names =
                List.filter
                  (fun s -> List.mem s box.Mechaml_legacy.Blackbox.output_signals)
                  (Universe.names_of_set context.Automaton.inputs t.input)
                |> List.sort compare
              in
              match Mealy.alphabet_index hyp a_names with
              | idx -> Some (idx, b_names)
              | exception Invalid_argument _ -> None)
            (Automaton.transitions_from context c_end)
          |> List.sort_uniq compare
        in
        let refinement =
          List.find_map
            (fun (a_idx, b_names) ->
              let probe = word @ [ a_idx ] in
              let real_out =
                match List.rev (Oracle.query oracle probe) with o :: _ -> o | [] -> Mealy.Blocked
              in
              let hyp_out =
                match List.rev (Mealy.run_word hyp probe) with o :: _ -> o | [] -> Mealy.Blocked
              in
              if real_out <> hyp_out then Some probe
              else begin
                (* Hypothesis and reality agree on this candidate; agreement
                   with a compatible output would contradict the deadlock the
                   model checker reported. *)
                assert (real_out <> Mealy.Out b_names);
                None
              end)
            candidates
        in
        match refinement with
        | Some w ->
          Obs_table.add_counterexample table w;
          round (n + 1)
        | None -> (Real_violation { kind = `Deadlock; inputs = decode word }, n, hyp)
      end)
  in
  let verdict, rounds, hyp = round 1 in
  {
    verdict;
    rounds;
    hypothesis_states = Mealy.num_states hyp;
    stats = Oracle.stats oracle;
  }
