module Blackbox = Mechaml_legacy.Blackbox

type stats = {
  output_queries : int;
  cached_queries : int;
  resets : int;
  symbols : int;
  equivalence_queries : int;
}

type t = {
  box : Blackbox.t;
  alpha : string list list;
  cache : (int list, Mealy.output list) Hashtbl.t;
  mutable output_queries : int;
  mutable cached_queries : int;
  mutable resets : int;
  mutable symbols : int;
  mutable equivalence_queries : int;
}

let create ~box ~alphabet =
  {
    box;
    alpha = List.map (List.sort_uniq compare) alphabet;
    cache = Hashtbl.create 256;
    output_queries = 0;
    cached_queries = 0;
    resets = 0;
    symbols = 0;
    equivalence_queries = 0;
  }

let alphabet t = t.alpha

let execute t word =
  let session = t.box.Blackbox.connect () in
  t.resets <- t.resets + 1;
  t.symbols <- t.symbols + List.length word;
  List.map
    (fun a ->
      let inputs = List.nth t.alpha a in
      match session.Blackbox.step ~inputs with
      | Some outs -> Mealy.Out (List.sort compare outs)
      | None -> Mealy.Blocked)
    word

let query t word =
  match Hashtbl.find_opt t.cache word with
  | Some outs ->
    t.cached_queries <- t.cached_queries + 1;
    outs
  | None ->
    let outs = execute t word in
    t.output_queries <- t.output_queries + 1;
    Hashtbl.add t.cache word outs;
    (* Every prefix of the word was answered along the way: cache them. *)
    let rec cache_prefixes rev_word rev_outs =
      match (rev_word, rev_outs) with
      | _ :: ws, _ :: os ->
        let w = List.rev ws and o = List.rev os in
        if not (Hashtbl.mem t.cache w) then Hashtbl.add t.cache w o;
        cache_prefixes ws os
      | _ -> ()
    in
    cache_prefixes (List.rev word) (List.rev outs);
    outs

let last_output t word =
  match List.rev (query t word) with
  | last :: _ -> last
  | [] -> invalid_arg "Oracle.last_output: empty word"

let count_equivalence_query t = t.equivalence_queries <- t.equivalence_queries + 1

let stats t =
  {
    output_queries = t.output_queries;
    cached_queries = t.cached_queries;
    resets = t.resets;
    symbols = t.symbols;
    equivalence_queries = t.equivalence_queries;
  }
