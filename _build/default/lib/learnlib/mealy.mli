(** Deterministic Mealy machines — the hypothesis space of the regular
    inference baselines (Section 6: Angluin's L*, conformance testing,
    adaptive model checking).

    A legacy component viewed as a black box induces a complete Mealy machine
    over a finite input alphabet of signal sets: feeding [A] either produces
    the output signal set [B] and advances, or is refused — observed as
    {!Blocked} — leaving the component where it was (refusals do not advance
    the component, matching {!Mechaml_legacy.Blackbox.session}). *)

type output = Blocked | Out of string list  (** sorted output signal names *)

type t = {
  alphabet : string list list;          (** input symbols: sorted signal sets *)
  trans : (output * int) array array;   (** [trans.(state).(symbol) = (output, next)] *)
  initial : int;
}

val create :
  alphabet:string list list -> trans:(output * int) array array -> ?initial:int -> unit -> t
(** Validates shape: every state has exactly [|alphabet|] entries, targets in
    range, and {!Blocked} entries are self-loops. *)

val num_states : t -> int

val step : t -> int -> int -> output * int
(** [step m state symbol]. *)

val run_word : t -> int list -> output list
(** Outputs along a word from the initial state. *)

val state_after : t -> int list -> int

val alphabet_index : t -> string list -> int
(** Index of a signal set in the alphabet.  Raises [Invalid_argument] when
    absent. *)

val of_automaton : alphabet:string list list -> Mechaml_ts.Automaton.t -> t
(** Ground-truth Mealy semantics of an input-deterministic automaton over the
    given alphabet (inputs outside the alphabet are ignored; refused inputs
    become {!Blocked} self-loops).  Used by tests and by the benchmark
    harness to predict baseline costs. *)

val to_automaton :
  ?name:string -> ?state_name:(int -> string) -> t -> Mechaml_ts.Automaton.t
(** The automaton of Definition 1 induced by the machine: one transition per
    non-blocked symbol; {!Blocked} symbols yield no transition (a refusal).
    Signals are reconstructed from the alphabet and output sets. *)

val equivalent : t -> t -> int list option
(** [None] when the two machines agree on every word (product BFS); otherwise
    a shortest distinguishing word. *)

val distinguishing_words : t -> int list list
(** A characterization set [W] as words of alphabet indices: for every pair
    of behaviourally distinct states some word in [W] separates them.  Empty
    when the machine has a single behavioural class. *)

val distinguishing_set : t -> string list list list
(** {!distinguishing_words} decoded into signal-set words. *)

val pp_output : Format.formatter -> output -> unit
