module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Compose = Mechaml_ts.Compose
module Ctl = Mechaml_logic.Ctl
module Checker = Mechaml_mc.Checker

type result = {
  outcome : Checker.outcome;
  learned : Mealy.t;
  lstar : Lstar.result;
}

let verify ~box ~context ?(property = Ctl.True) ?(label_of = fun _ -> []) ~alphabet
    ~state_bound () =
  let lstar =
    Lstar.learn ~box ~alphabet
      ~equivalence:(Lstar.Wmethod { extra_states = max 0 state_bound })
      ()
  in
  let learned = lstar.Lstar.hypothesis in
  let auto = Mealy.to_automaton ~name:box.Mechaml_legacy.Blackbox.name learned in
  (* The hypothesis states are anonymous, so [label_of] rarely has anything
     to say about them; the property's non-context propositions must still be
     declared in the universe for the check to be well-defined. *)
  let auto =
    let labelled =
      List.init (Automaton.num_states auto) (fun s ->
          label_of (Automaton.state_name auto s))
      |> List.concat
    in
    let declared =
      List.filter
        (fun p -> not (Universe.mem context.Automaton.props p))
        (Ctl.props property)
    in
    let universe = Universe.of_list (List.sort_uniq compare (labelled @ declared)) in
    Automaton.relabel auto ~props:universe (fun s ->
        Universe.set_of_names universe (label_of (Automaton.state_name auto s)))
  in
  let product = Compose.parallel context auto in
  let outcome =
    Checker.check_conjunction product.Compose.auto [ property; Ctl.deadlock_free ]
  in
  { outcome; learned; lstar }
