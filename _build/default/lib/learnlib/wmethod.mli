(** Conformance testing by the W-method (Vasilevskii / Chow), the standard
    realisation of the equivalence oracle in regular inference (Section 6,
    "Equivalence Check").

    Given a hypothesis with [n] states and an assumed bound [n + extra] on
    the black box's states, the suite [P · Σ^{≤extra} · W] (transition cover
    [P], characterization set [W]) is exhaustive: it finds a distinguishing
    word whenever the black box and the hypothesis differ within the bound.
    Its size is what the paper quotes as exponential in the state-count gap
    — reproduced as experiment EXP-T7. *)

val transition_cover : Mealy.t -> int list list
(** Prefix-closed: the empty word, an access word per reachable state, and
    each of those extended by every symbol. *)

val suite : hypothesis:Mealy.t -> extra_states:int -> int list list
(** The full test suite, deduplicated, short words first. *)

val suite_size : hypothesis:Mealy.t -> extra_states:int -> int * int
(** (number of words, total symbols) without materialising executions —
    used by the cost benchmarks. *)

val find_counterexample :
  Oracle.t -> hypothesis:Mealy.t -> extra_states:int -> int list option
(** Execute the suite against the black box; the first word on which the
    outputs differ, or [None] when the suite passes (the hypothesis is
    correct up to the state bound). *)
