(** Deterministic finite automata over a named alphabet — the classical
    setting of regular inference (Section 6: "it is assumed that the
    considered black box system can be modeled by a deterministic finite
    automaton (DFA); the problem is then to identify the regular language
    L(M)").

    Kept separate from the Mealy machinery: the paper's related-work
    discussion is phrased over DFAs and languages, and {!Dfa_lstar}
    implements Angluin's original algorithm verbatim on this type. *)

type t = {
  alphabet : string list;
  delta : int array array;   (** [delta.(state).(symbol)] *)
  accepting : bool array;
  initial : int;
}

val create :
  alphabet:string list -> delta:int array array -> accepting:bool array -> ?initial:int ->
  unit -> t
(** Validates shape and ranges. *)

val num_states : t -> int

val symbol_index : t -> string -> int

val step : t -> int -> int -> int

val state_after : t -> int list -> int

val accepts : t -> int list -> bool
(** Membership of a word (symbol indices). *)

val accepts_word : t -> string list -> bool

val equivalent : t -> t -> int list option
(** [None] iff same language; otherwise a shortest distinguishing word. *)

val minimize : t -> t
(** Hopcroft-style partition refinement over the reachable part: the unique
    minimal DFA of the language (up to state numbering). *)

val complement : t -> t

val random : seed:int -> states:int -> alphabet:string list -> t
(** Reproducible random DFAs for tests and benchmarks (roughly half the
    states accepting). *)
