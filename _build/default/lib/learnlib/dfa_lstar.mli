(** Angluin's L* in its original DFA form (Section 6, "Angluin's Algorithm"):
    a Learner, initially knowing only the alphabet, identifies the regular
    language L(M) of a black box by membership queries to a Teacher and
    equivalence queries to an Oracle, organising the answers in an
    observation table whose row prefixes reach states and whose column
    suffixes distinguish them.

    The paper quotes the classical bounds: at most [n] equivalence queries
    and [O(|Σ| n² m)] membership queries for an [n]-state target and
    counterexamples of length [m]; both are asserted by the test suite. *)

type teacher = {
  member : int list -> bool;           (** w ∈ L(M)? *)
  equiv : Dfa.t -> int list option;    (** correct, or a counterexample word *)
}

type stats = { membership_queries : int; equivalence_queries : int }

val teacher_of_dfa : Dfa.t -> teacher * (unit -> stats)
(** A counting teacher answering from a known DFA (membership answers are
    cached, so the count is of {e distinct} queries, as in the classical
    analysis). *)

type result = {
  hypothesis : Dfa.t;
  rounds : int;
  table_rows : int;
  table_columns : int;
}

val learn : alphabet:string list -> teacher:teacher -> ?max_rounds:int -> unit -> result
(** Runs L* to convergence.  The returned hypothesis is the minimal DFA of
    the target language. *)
