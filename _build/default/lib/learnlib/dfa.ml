module Prng = Mechaml_util.Prng

type t = {
  alphabet : string list;
  delta : int array array;
  accepting : bool array;
  initial : int;
}

let num_states m = Array.length m.delta

let create ~alphabet ~delta ~accepting ?(initial = 0) () =
  let n = Array.length delta and k = List.length alphabet in
  if n = 0 then invalid_arg "Dfa.create: no states";
  if Array.length accepting <> n then invalid_arg "Dfa.create: accepting length mismatch";
  if initial < 0 || initial >= n then invalid_arg "Dfa.create: initial out of range";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Dfa.create: row length mismatch";
      Array.iter (fun d -> if d < 0 || d >= n then invalid_arg "Dfa.create: target out of range") row)
    delta;
  { alphabet; delta; accepting; initial }

let symbol_index m s =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Dfa.symbol_index: unknown symbol %S" s)
    | x :: rest -> if x = s then i else go (i + 1) rest
  in
  go 0 m.alphabet

let step m s a = m.delta.(s).(a)

let state_after m w = List.fold_left (fun s a -> step m s a) m.initial w

let accepts m w = m.accepting.(state_after m w)

let accepts_word m w = accepts m (List.map (symbol_index m) w)

let equivalent a b =
  if a.alphabet <> b.alphabet then invalid_arg "Dfa.equivalent: different alphabets";
  let k = List.length a.alphabet in
  let seen = Hashtbl.create 64 and parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (a.initial, b.initial) in
  Hashtbl.add seen start ();
  Queue.add start queue;
  let found = ref None in
  let check ((sa, sb) as pair) = if a.accepting.(sa) <> b.accepting.(sb) then found := Some pair in
  check start;
  while !found = None && not (Queue.is_empty queue) do
    let ((sa, sb) as pair) = Queue.pop queue in
    for x = 0 to k - 1 do
      if !found = None then begin
        let next = (step a sa x, step b sb x) in
        if not (Hashtbl.mem seen next) then begin
          Hashtbl.add seen next ();
          Hashtbl.add parent next (pair, x);
          Queue.add next queue;
          check next
        end
      end
    done
  done;
  match !found with
  | None -> None
  | Some pair ->
    let rec unwind p acc =
      match Hashtbl.find_opt parent p with
      | None -> acc
      | Some (p', x) -> unwind p' (x :: acc)
    in
    Some (unwind pair [])

let reachable m =
  let n = num_states m in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(m.initial) <- true;
  Queue.add m.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun d ->
        if not seen.(d) then begin
          seen.(d) <- true;
          Queue.add d queue
        end)
      m.delta.(s)
  done;
  seen

(* Moore-style partition refinement restricted to reachable states. *)
let minimize m =
  let n = num_states m in
  let k = List.length m.alphabet in
  let live = reachable m in
  let block = Array.make n 0 in
  for s = 0 to n - 1 do
    block.(s) <- (if m.accepting.(s) then 1 else 0)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    (* signature of a state: its block plus the blocks of its successors *)
    let sigs = Hashtbl.create 32 in
    let next_block = Array.make n 0 in
    let fresh = ref 0 in
    for s = 0 to n - 1 do
      if live.(s) then begin
        let signature = (block.(s), Array.to_list (Array.map (fun d -> block.(d)) m.delta.(s))) in
        let b =
          match Hashtbl.find_opt sigs signature with
          | Some b -> b
          | None ->
            let b = !fresh in
            incr fresh;
            Hashtbl.add sigs signature b;
            b
        in
        next_block.(s) <- b
      end
    done;
    let distinct_before =
      List.sort_uniq compare (List.filteri (fun s _ -> live.(s)) (Array.to_list block))
    in
    if !fresh <> List.length distinct_before then changed := true;
    for s = 0 to n - 1 do
      if live.(s) then block.(s) <- next_block.(s)
    done
  done;
  (* renumber blocks densely *)
  let repr = Hashtbl.create 16 in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if live.(s) && not (Hashtbl.mem repr block.(s)) then begin
      Hashtbl.add repr block.(s) (!count, s);
      incr count
    end
  done;
  let id b = fst (Hashtbl.find repr b) in
  let delta =
    Array.init !count (fun _ -> Array.make k 0)
  in
  let accepting = Array.make !count false in
  Hashtbl.iter
    (fun b (i, s) ->
      ignore b;
      accepting.(i) <- m.accepting.(s);
      for x = 0 to k - 1 do
        delta.(i).(x) <- id block.(step m s x)
      done)
    repr;
  { alphabet = m.alphabet; delta; accepting; initial = id block.(m.initial) }

let complement m = { m with accepting = Array.map not m.accepting }

let random ~seed ~states ~alphabet =
  if states < 1 then invalid_arg "Dfa.random: states must be positive";
  let rng = Prng.create ~seed in
  let k = List.length alphabet in
  let delta = Array.init states (fun _ -> Array.init k (fun _ -> Prng.int rng states)) in
  let accepting = Array.init states (fun _ -> Prng.bool rng) in
  { alphabet; delta; accepting; initial = 0 }
