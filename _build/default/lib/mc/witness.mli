(** Counterexample witnesses.

    When a (compositional, universally quantified) property fails, the model
    checker produces a finite run of the automaton witnessing the existential
    dual — the counterexample handed to the testing step (Section 4.2,
    Listing 1.1).  Witnesses exist as finite runs for the fragment the
    approach needs: reachability of a bad state ([EF]), of a deadlock, and
    bounded/unbounded [EG]/[EU] lassos.  For connectives outside the
    supported fragment the witness degenerates to the failing initial state
    with an explanatory note — the verdict is still correct, only the trace
    is less informative. *)

type strategy =
  | Bfs_shortest  (** breadth-first: shortest counterexamples *)
  | Dfs_first     (** depth-first: first found; ablation EXP-T3 *)

type t = {
  run : Mechaml_ts.Run.t;
  explanation : string;
  complete : bool;
      (** [true] when the run alone is full evidence for the formula: every
          obligation is discharged by the states and interactions on the run
          (including closed lassos, which repeat forever by determinism).
          [false] when the evidence additionally relies on the final state
          {e blocking} (a maximal run ending early) or on an obligation the
          extractor could not unfold — for an abstraction, such residual
          claims must be validated against the real component before the
          counterexample may be called real (Section 4.2). *)
}

val witness :
  Sat.env ->
  strategy:strategy ->
  start:Mechaml_ts.Automaton.state ->
  Mechaml_logic.Ctl.t ->
  t
(** [witness env ~strategy ~start psi] builds a run from [start] witnessing
    the formula [psi], which must hold at [start] (checked; raises
    [Invalid_argument] otherwise). *)
