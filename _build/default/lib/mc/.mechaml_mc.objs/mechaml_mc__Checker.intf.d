lib/mc/checker.mli: Mechaml_logic Mechaml_ts Witness
