lib/mc/sat.mli: Mechaml_logic Mechaml_ts
