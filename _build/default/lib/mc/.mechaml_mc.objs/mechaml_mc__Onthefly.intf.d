lib/mc/onthefly.mli: Mechaml_logic Mechaml_ts
