lib/mc/sat.ml: Array Hashtbl List Mechaml_logic Mechaml_ts Printf Queue
