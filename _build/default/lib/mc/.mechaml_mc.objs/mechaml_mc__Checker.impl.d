lib/mc/checker.ml: Array List Mechaml_logic Mechaml_ts Queue Sat Witness
