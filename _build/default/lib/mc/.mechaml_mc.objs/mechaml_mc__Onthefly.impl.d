lib/mc/onthefly.ml: Hashtbl List Mechaml_logic Mechaml_ts Mechaml_util Option Printf Queue
