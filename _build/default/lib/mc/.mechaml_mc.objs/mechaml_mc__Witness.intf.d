lib/mc/witness.mli: Mechaml_logic Mechaml_ts Sat
