lib/mc/witness.ml: Array Hashtbl List Mechaml_logic Mechaml_ts Printf Queue Sat String
