module Automaton = Mechaml_ts.Automaton
module Run = Mechaml_ts.Run
module Ctl = Mechaml_logic.Ctl

type strategy = Bfs_shortest | Dfs_first

type t = { run : Run.t; explanation : string; complete : bool }

(* A path fragment: states s₀ … sₙ with the interactions between them. *)
type frag = { states : Automaton.state list; io : Run.io list }

let single s = { states = [ s ]; io = [] }

let last_state f = List.nth f.states (List.length f.states - 1)

let join a b =
  match b.states with
  | [] -> a
  | first :: rest ->
    assert (last_state a = first);
    { states = a.states @ rest; io = a.io @ b.io }

let step s io t = { states = [ s; t ]; io = [ io ] }

(* Search a path from [from] to a state satisfying [target]; intermediate
   states (excluding the target) must satisfy [via]. *)
let search env strategy ~from ~via ~target =
  let auto = Sat.automaton env in
  let n = Automaton.num_states auto in
  if target from then Some (single from)
  else if not (via from) then None
  else begin
    let parent = Array.make n None in
    let seen = Array.make n false in
    seen.(from) <- true;
    let found = ref None in
    (match strategy with
    | Bfs_shortest ->
      let queue = Queue.create () in
      Queue.add from queue;
      while !found = None && not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        List.iter
          (fun (t : Automaton.trans) ->
            if !found = None && not seen.(t.dst) then begin
              seen.(t.dst) <- true;
              parent.(t.dst) <- Some (s, (t.input, t.output));
              if target t.dst then found := Some t.dst
              else if via t.dst then Queue.add t.dst queue
            end)
          (Automaton.transitions_from auto s)
      done
    | Dfs_first ->
      let rec go s =
        List.iter
          (fun (t : Automaton.trans) ->
            if !found = None && not seen.(t.dst) then begin
              seen.(t.dst) <- true;
              parent.(t.dst) <- Some (s, (t.input, t.output));
              if target t.dst then found := Some t.dst else if via t.dst then go t.dst
            end)
          (Automaton.transitions_from auto s)
      in
      go from);
    match !found with
    | None -> None
    | Some tgt ->
      let rec unwind s states io =
        match parent.(s) with
        | None -> (s :: states, io)
        | Some (p, ab) -> unwind p (s :: states) (ab :: io)
      in
      let states, io = unwind tgt [] [] in
      Some { states; io }
  end

let rec is_state_formula (f : Ctl.t) =
  match f with
  | True | False | Prop _ | Deadlock -> true
  | Not g -> is_state_formula g
  | And (a, b) | Or (a, b) | Implies (a, b) -> is_state_formula a && is_state_formula b
  | Ax _ | Ex _ | Af _ | Ef _ | Ag _ | Eg _ | Au _ | Eu _ -> false

let witness env ~strategy ~start psi =
  let auto = Sat.automaton env in
  let holds f s = (Sat.sat env f).(s) in
  if not (holds psi start) then
    invalid_arg "Witness.witness: formula does not hold at the start state";
  let notes = ref [] in
  let note msg = if not (List.mem msg !notes) then notes := msg :: !notes in
  (* Completeness: does the returned run alone witness the formula, or does
     the evidence also rely on a residual claim about the final state
     (blocking, or an obligation that was not unfolded)? *)
  let complete = ref true in
  let residual why =
    complete := false;
    note why
  in
  let fallback s why =
    residual why;
    single s
  in
  let succ_with s pred =
    List.find_opt (fun (t : Automaton.trans) -> pred t.dst) (Automaton.transitions_from auto s)
  in
  let rec gen s (f : Ctl.t) =
    match f with
    | Deadlock ->
      (* the claim "this state blocks" is about absent behaviour: residual *)
      residual "evidence relies on the final state blocking";
      single s
    | _ when is_state_formula f -> single s
    | And (a, b) ->
      (* Both conjuncts hold at [s]; witness the temporal one (or the first
         if both are temporal — the second is then only asserted). *)
      if is_state_formula a then gen s b
      else if is_state_formula b then gen s a
      else begin
        residual
          (Printf.sprintf "conjunct %s holds at %s but is not unfolded in this witness"
             (Ctl.to_string b) (Automaton.state_name auto s));
        gen s a
      end
    | Or (a, b) -> if holds a s then gen s a else gen s b
    | Implies (a, b) -> if holds (Ctl.Not a) s then single s else gen s b
    | Ex g -> (
      match succ_with s (holds g) with
      | Some t -> join (step s (t.input, t.output) t.dst) (gen t.dst g)
      | None -> fallback s "EX witness: no successor found (inconsistent sat set)")
    | Ef (None, g) -> (
      match search env strategy ~from:s ~via:(fun _ -> true) ~target:(holds g) with
      | Some frag -> join frag (gen (last_state frag) g)
      | None -> fallback s "EF witness: target unreachable (inconsistent sat set)")
    | Ef (Some b, g) -> bounded_walk s b ~f:Ctl.True ~g ~exist:`F
    | Eu (None, f1, g) -> (
      match search env strategy ~from:s ~via:(holds f1) ~target:(holds g) with
      | Some frag -> join frag (gen (last_state frag) g)
      | None -> fallback s "EU witness: target unreachable (inconsistent sat set)")
    | Eu (Some b, f1, g) -> bounded_walk s b ~f:f1 ~g ~exist:`F
    | Eg (None, g) -> lasso s g
    | Eg (Some b, g) -> bounded_walk s b ~f:g ~g:Ctl.False ~exist:`G
    | Not (Au (None, f1, g)) ->
      (* ¬A(f U g) ≡ E(¬g U (¬f ∧ ¬g)) ∨ EG ¬g *)
      let left = Ctl.Eu (None, Ctl.Not g, Ctl.And (Ctl.Not f1, Ctl.Not g)) in
      if holds left s then gen s left else gen s (Ctl.Eg (None, Ctl.Not g))
    | _ ->
      fallback s
        (Printf.sprintf "witness extraction not supported for %s; property fails at this state"
           (Ctl.to_string f))
  (* EG lasso: follow successors inside the EG set until a blocking state or a
     revisit.  A closed loop is complete evidence (it repeats forever); a
     blocking end is a residual claim about missing behaviour. *)
  and lasso s g =
    let inside = Sat.sat env (Ctl.Eg (None, g)) in
    let seen = Hashtbl.create 16 in
    let rec go s acc =
      if Automaton.is_blocking auto s then begin
        residual
          (Printf.sprintf "EG evidence ends at the blocking state %s"
             (Automaton.state_name auto s));
        acc
      end
      else if Hashtbl.mem seen s then begin
        note (Printf.sprintf "loop closes at state %s" (Automaton.state_name auto s));
        acc
      end
      else begin
        Hashtbl.add seen s ();
        match
          List.find_opt (fun (t : Automaton.trans) -> inside.(t.dst))
            (Automaton.transitions_from auto s)
        with
        | Some t -> go t.dst (join acc (step s (t.input, t.output) t.dst))
        | None ->
          residual "EG evidence stops without a qualifying successor";
          acc
      end
    in
    go s (single s)
  (* Bounded EF/EU/EG walks guided by the DP satisfaction sets of the
     residual formulas at each elapsed time.  For `F the walk is complete
     iff it reaches a goal state; for `G iff it survives the whole window —
     an early blocking end is a residual claim. *)
  and bounded_walk s { Ctl.lo; hi } ~f ~g ~exist =
    let residual_formula k =
      let b = Ctl.bounds (max 0 (lo - k)) (hi - k) in
      match exist with
      | `F -> Ctl.Eu (Some b, f, g)
      | `G -> Ctl.Eg (Some b, f)
    in
    let rec go k s acc =
      if k > hi then acc
      else
        let goal = match exist with `F -> k >= lo && holds g s | `G -> false in
        if goal then join acc (gen s g)
        else if k >= hi then acc
        else if Automaton.is_blocking auto s then begin
          (match exist with
          | `F ->
            residual "bounded eventuality evidence stops at a blocking state"
          | `G ->
            if k < hi then
              residual
                (Printf.sprintf "bounded EG evidence ends early at the blocking state %s"
                   (Automaton.state_name auto s)));
          acc
        end
        else begin
          match succ_with s (fun t -> (Sat.sat env (residual_formula (k + 1))).(t)) with
          | Some t -> go (k + 1) t.dst (join acc (step s (t.input, t.output) t.dst))
          | None ->
            residual "bounded evidence stops without a qualifying successor";
            acc
        end
    in
    go 0 s (single s)
  in
  let frag = gen start psi in
  let run = Run.regular ~states:frag.states ~io:frag.io in
  let explanation =
    match List.rev !notes with [] -> "finite witness" | ns -> String.concat "; " ns
  in
  { run; explanation; complete = !complete }
