(* Convoy coordination over a real (delayed, possibly lossy) wireless link.

   The synchronous RailCab walkthrough (examples/railcab_convoy.exe) wires
   the roles directly; here every message crosses an explicit connector
   channel, as the Mechatronic UML pattern prescribes for radio links.  The
   loop then surfaces two findings a synchronous model hides:

   - a front role that leaves the convoy while its acknowledgement is still
     in flight briefly violates the pattern constraint (it needs a grace
     state covering the channel delay);
   - a lossy link never deadlocks the handshake, but breaks the bounded
     response obligation "a proposal is answered within 6 time units" — and
     the counterexample replays on the real component.

   Run with: dune exec examples/remote_convoy.exe *)

module Remote = Mechaml_scenarios.Railcab_remote
module Listing = Mechaml_scenarios.Listing
module Loop = Mechaml_core.Loop
module Ctl = Mechaml_logic.Ctl

let show name (r : Loop.result) =
  Format.printf "== %s ==@.@.%a@.@." name Loop.pp_result r;
  match r.Loop.verdict with
  | Loop.Real_violation { witness; product; _ } ->
    Format.printf "Counterexample:@.%s@."
      (Listing.render ~left_name:"front+link" ~right_name:"shuttle2" product witness)
  | _ -> ()

let () =
  Format.printf "Pattern constraint: %s@." (Ctl.to_string Remote.constraint_);
  Format.printf "Bounded response:   %s@.@." (Ctl.to_string Remote.response_property);
  show "Reliable link, pattern constraint"
    (Remote.run ~lossy:false ~property:Remote.constraint_ ());
  show "Reliable link, bounded response"
    (Remote.run ~lossy:false ~property:Remote.response_property ());
  show "Lossy link, bounded response"
    (Remote.run ~lossy:true ~property:Remote.response_property ());
  show "Reliable link, front role without the grace state"
    (Loop.run ~label_of:Remote.label_of ~context:Remote.front_hasty_context
       ~property:Remote.constraint_ ~legacy:Remote.box_remote ())
