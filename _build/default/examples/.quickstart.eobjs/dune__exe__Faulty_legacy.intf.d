examples/faulty_legacy.mli:
