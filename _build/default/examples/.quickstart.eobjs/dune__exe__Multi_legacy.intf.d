examples/multi_legacy.mli:
