examples/quickstart.mli:
