examples/remote_convoy.mli:
