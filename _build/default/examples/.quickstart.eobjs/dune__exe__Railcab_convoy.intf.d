examples/railcab_convoy.mli:
