examples/lstar_comparison.mli:
