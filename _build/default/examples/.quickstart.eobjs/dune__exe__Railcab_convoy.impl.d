examples/railcab_convoy.ml: Filename Format List Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_muml Mechaml_scenarios Mechaml_ts Sys
