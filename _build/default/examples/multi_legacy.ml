(* Multiple legacy components (the paper's Section 7 extension): a gateway
   context polls two independently developed legacy sensors.  Both sensors
   are black boxes; the loop runs against their parallel combination and
   improves both behavioural models at once, then splits the learned product
   model back into one incomplete automaton per component.

   Sensor A needs a cool-down period between polls; the correct gateway
   alternates A and B, the hasty gateway polls A twice in a row and jams.

   Run with: dune exec examples/multi_legacy.exe *)

module Automaton = Mechaml_ts.Automaton
module Multi = Mechaml_core.Multi
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Blackbox = Mechaml_legacy.Blackbox
module Listing = Mechaml_scenarios.Listing

let sensor_a =
  let b = Automaton.Builder.create ~name:"sensorA" ~inputs:[ "pollA" ] ~outputs:[ "okA" ] () in
  Automaton.Builder.add_trans b ~src:"ready" ~inputs:[ "pollA" ] ~outputs:[ "okA" ] ~dst:"cooldown" ();
  Automaton.Builder.add_trans b ~src:"ready" ~dst:"ready" ();
  (* during the cool-down the sensor refuses polls — only silence is accepted *)
  Automaton.Builder.add_trans b ~src:"cooldown" ~dst:"ready" ();
  Automaton.Builder.set_initial b [ "ready" ];
  Automaton.Builder.build b

let sensor_b =
  let b = Automaton.Builder.create ~name:"sensorB" ~inputs:[ "pollB" ] ~outputs:[ "okB" ] () in
  Automaton.Builder.add_trans b ~src:"ready" ~inputs:[ "pollB" ] ~outputs:[ "okB" ] ~dst:"ready" ();
  Automaton.Builder.add_trans b ~src:"ready" ~dst:"ready" ();
  Automaton.Builder.set_initial b [ "ready" ];
  Automaton.Builder.build b

let box_a = Blackbox.of_automaton ~port:"sensorA" sensor_a

let box_b = Blackbox.of_automaton ~port:"sensorB" sensor_b

(* The gateway polls and consumes the answer within the period (synchronous
   communication), alternating between the sensors. *)
let gateway alternating =
  let b =
    Automaton.Builder.create ~name:"gateway" ~inputs:[ "okA"; "okB" ]
      ~outputs:[ "pollA"; "pollB" ] ()
  in
  if alternating then begin
    Automaton.Builder.add_trans b ~src:"askA" ~inputs:[ "okA" ] ~outputs:[ "pollA" ] ~dst:"askB" ();
    Automaton.Builder.add_trans b ~src:"askB" ~inputs:[ "okB" ] ~outputs:[ "pollB" ] ~dst:"askA" ()
  end
  else begin
    (* hasty: A, A again (no cool-down respected), then B *)
    Automaton.Builder.add_trans b ~src:"askA" ~inputs:[ "okA" ] ~outputs:[ "pollA" ] ~dst:"askA2" ();
    Automaton.Builder.add_trans b ~src:"askA2" ~inputs:[ "okA" ] ~outputs:[ "pollA" ] ~dst:"askB" ();
    Automaton.Builder.add_trans b ~src:"askB" ~inputs:[ "okB" ] ~outputs:[ "pollB" ] ~dst:"askA" ()
  end;
  Automaton.Builder.set_initial b [ "askA" ];
  Automaton.Builder.build b

let label_of =
  Multi.joint_labels [ (fun s -> [ "sensorA." ^ s ]); (fun s -> [ "sensorB." ^ s ]) ]

let show name r =
  Format.printf "== %s ==@.@.%a@.@." name Loop.pp_result r.Multi.loop;
  (match r.Multi.loop.Loop.verdict with
  | Loop.Real_violation { witness; product; _ } ->
    Format.printf "Counterexample:@.%s@."
      (Listing.render ~left_name:"gateway" ~right_name:"sensors" product witness)
  | _ -> ());
  List.iter
    (fun (component, model) ->
      Format.printf "Learned model of %s:@.%a@." component Incomplete.pp model)
    r.Multi.component_models

let () =
  let property = Mechaml_logic.Ctl.True in
  show "Alternating gateway (correct)"
    (Multi.run ~label_of ~context:(gateway true) ~property ~legacies:[ box_a; box_b ] ());
  show "Hasty gateway (violates sensor A's cool-down)"
    (Multi.run ~label_of ~context:(gateway false) ~property ~legacies:[ box_a; box_b ] ())
