(* The paper's running example, end to end: the RailCab DistanceCoordination
   pattern (Fig. 1/5), initial behavior synthesis (Fig. 4), the iterative
   verify–test–learn loop on both legacy shuttle implementations (Fig. 6/7),
   and the monitored traces of Listings 1.1–1.5.

   Run with: dune exec examples/railcab_convoy.exe
   DOT files for the figures are written to ./railcab_figures/. *)

module Railcab = Mechaml_scenarios.Railcab
module Listing = Mechaml_scenarios.Listing
module Loop = Mechaml_core.Loop
module Chaos = Mechaml_core.Chaos
module Synthesis = Mechaml_core.Synthesis
module Incomplete = Mechaml_core.Incomplete
module Checker = Mechaml_mc.Checker
module Witness = Mechaml_mc.Witness
module Compose = Mechaml_ts.Compose
module Automaton = Mechaml_ts.Automaton
module Dot = Mechaml_ts.Dot
module Monitor = Mechaml_legacy.Monitor
module Replay = Mechaml_legacy.Replay
module Event = Mechaml_legacy.Event
module Ctl = Mechaml_logic.Ctl

let figures_dir = "railcab_figures"

let save_figure name dot =
  if not (Sys.file_exists figures_dir) then Sys.mkdir figures_dir 0o755;
  Dot.save ~path:(Filename.concat figures_dir (name ^ ".dot")) dot

let section title = Format.printf "@.=== %s ===@.@." title

let () =
  Format.printf "RailCab DistanceCoordination — reproduction of the paper's walkthrough@.";

  (* -- The pattern and its upfront verification (Section "Modeling") -- *)
  section "Pattern verification (roles + constraint + deadlock freedom)";
  (match Mechaml_muml.Pattern.verify Railcab.pattern with
  | Checker.Holds -> Format.printf "DistanceCoordination pattern verified: constraint %s holds.@."
                       (Ctl.to_string Railcab.constraint_)
  | Checker.Violated { explanation; _ } -> Format.printf "pattern violated: %s@." explanation);
  save_figure "fig5_front_role" (Dot.of_automaton Railcab.context);

  (* -- Initial behavior synthesis (Section 3, Fig. 4) -- *)
  section "Initial behavior synthesis (Fig. 4)";
  let m0 = Synthesis.initial_model Railcab.box_correct in
  Format.printf "M_l^0 (trivial incomplete automaton):@.%a@." Incomplete.pp m0;
  (* Seed the proposition universe with the constraint's legacy-side
     propositions, exactly as the loop does internally. *)
  let legacy_props =
    List.filter
      (fun p -> not (Mechaml_ts.Universe.mem Railcab.context.Automaton.props p))
      (Ctl.props Railcab.constraint_)
  in
  let a0 = Chaos.closure ~label_of:Railcab.label_of ~extra_props:legacy_props m0 in
  Format.printf "M_a^0 = chaos(M_l^0): %d states, %d transitions@."
    (Automaton.num_states a0) (Automaton.num_transitions a0);
  save_figure "fig4b_initial_closure" (Dot.of_automaton a0);
  save_figure "fig3_chaotic_automaton"
    (Dot.of_automaton
       (Chaos.chaotic_automaton ~name:"chaos" ~inputs:Railcab.front_to_rear
          ~outputs:Railcab.rear_to_front));

  (* -- Listing 1.1: a first counterexample from the initial abstraction -- *)
  section "First model-checking counterexample (Listing 1.1)";
  let product0 = Compose.parallel Railcab.context a0 in
  let weakened = Ctl.weaken_for_chaos ~chaos_prop:Chaos.chaos_prop Railcab.constraint_ in
  (match
     Checker.check_conjunction ~strategy:Witness.Dfs_first product0.Compose.auto
       [ weakened; Ctl.deadlock_free ]
   with
  | Checker.Violated { witness; formula; _ } ->
    Format.printf "violated: %s@.@.%s@." (Ctl.to_string formula)
      (Listing.render ~left_name:"shuttle1" ~right_name:"shuttle2" product0 witness)
  | Checker.Holds -> Format.printf "unexpectedly proved@.");

  (* -- Listings 1.2/1.3: monitoring and deterministic replay -- *)
  section "Counterexample-based testing with deterministic replay (Listings 1.2/1.3)";
  let test_inputs = [ []; [ "convoyProposalRejected" ] ] in
  Format.printf "Recording phase — minimal events only (Listing 1.2 style):@.";
  let recording = Replay.record ~box:Railcab.box_conflicting ~inputs:test_inputs in
  Format.printf "%s@.@." (Event.to_string recording.Replay.minimal_events);
  Format.printf "Replay phase — full instrumentation (Listing 1.3 style):@.";
  let outcome = Replay.replay ~box:Railcab.box_conflicting recording in
  Format.printf "%s@." (Event.to_string outcome.Monitor.events);

  (* -- The conflicting shuttle: fast conflict detection (Fig. 6, L. 1.4) -- *)
  section "Conflicting legacy shuttle: fast conflict detection (Fig. 6 / Listing 1.4)";
  let conflict = Railcab.run_conflicting () in
  Format.printf "%a@.@." Loop.pp_result conflict;
  (match conflict.Loop.verdict with
  | Loop.Real_violation { witness; product; _ } ->
    Format.printf "Counterexample (violation inside the synthesized behaviour):@.@.%s@."
      (Listing.render ~left_name:"shuttle1" ~right_name:"shuttle2" product witness);
    save_figure "fig6_conflicting_learned"
      (Dot.of_automaton (Incomplete.to_automaton conflict.Loop.final_model))
  | _ -> Format.printf "unexpected verdict@.");

  (* -- The correct shuttle: iterate to a proof (Fig. 7, Listing 1.5) -- *)
  section "Correct legacy shuttle: proof by iterative synthesis (Fig. 7 / Listing 1.5)";
  let proof = Railcab.run_correct () in
  Format.printf "%a@.@." Loop.pp_result proof;
  Format.printf "Final learned model (Fig. 7 plus the break handshake):@.%a@." Incomplete.pp
    proof.Loop.final_model;
  save_figure "fig7_correct_learned"
    (Dot.of_automaton (Incomplete.to_automaton proof.Loop.final_model));
  Format.printf "Monitored trace of a successful learning step (Listing 1.5 style):@.";
  let l5 =
    Monitor.run ~box:Railcab.box_correct ~instrumentation:Monitor.Full
      ~inputs:[ []; [ "convoyProposalRejected" ]; []; [ "startConvoy" ] ]
  in
  Format.printf "%s@.@." (Event.to_string l5.Monitor.events);
  Format.printf "Figures written to %s/.@." figures_dir
