(* Integrating a faulty legacy component: the stop-and-wait scenario.

   A receiver context acknowledges every frame; the legacy sender under
   integration is a "fire-and-forget" implementation that never consumes
   acknowledgements.  The synchronous link jams one period after the first
   frame — a real deadlock the synthesis loop finds, confirms by testing
   against the component, and reports with a replayable counterexample.  The
   correct sender is then proved in a handful of iterations.

   Run with: dune exec examples/faulty_legacy.exe *)

module Protocol = Mechaml_scenarios.Protocol
module Listing = Mechaml_scenarios.Listing
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Compose = Mechaml_ts.Compose
module Testcase = Mechaml_testing.Testcase

let () =
  Format.printf "== Stop-and-wait: integrating a fire-and-forget sender ==@.@.";
  let r = Protocol.run_fire_and_forget () in
  Format.printf "%a@.@." Loop.pp_result r;
  (match r.Loop.verdict with
  | Loop.Real_violation { kind = Loop.Deadlock; witness; product; _ } ->
    Format.printf "Deadlock counterexample:@.@.%s@."
      (Listing.render ~left_name:"receiver" ~right_name:"sender" product witness);
    (* Replay the counterexample against the component to show it is real:
       every predicted interaction is reproduced. *)
    let tc =
      Testcase.of_projected_run ~name:"deadlock-prefix" product.Compose.right
        (Compose.project_right product witness)
    in
    let verdict = Testcase.execute ~box:Protocol.box_fire_and_forget tc in
    Format.printf "Replaying the prefix on the real component: %a@."
      Testcase.pp_classification verdict.Testcase.classification;
    Format.printf
      "The sender then refuses every interaction the receiver offers (the@.acknowledgement), \
       so the deadlock is real — Lemma 6 applies, no false negative.@."
  | _ -> Format.printf "unexpected verdict@.");
  Format.printf "@.Knowledge learned about the faulty sender before the verdict:@.%a@."
    Incomplete.pp r.Loop.final_model;
  Format.printf "@.== Same context, correct alternating sender ==@.@.";
  let ok = Protocol.run_correct () in
  Format.printf "%a@.@." Loop.pp_result ok;
  Format.printf "Learned model of the correct sender:@.%a@." Incomplete.pp ok.Loop.final_model
