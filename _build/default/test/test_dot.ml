module Dot = Mechaml_ts.Dot
module Listing = Mechaml_scenarios.Listing
module Compose = Mechaml_ts.Compose
module Run = Mechaml_ts.Run
module Automaton = Mechaml_ts.Automaton
open Helpers

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let simple () =
  automaton ~inputs:[ "x" ] ~outputs:[ "y" ]
    ~states:[ ("a", [ "p" ]) ]
    ~trans:[ ("a", [ "x" ], [ "y" ], "b"); ("b", [], [], "a") ]
    ~initial:[ "a" ] ()

let unit_tests =
  [
    test "dot mentions states, labels and edges" (fun () ->
        let dot = Dot.of_automaton (simple ()) in
        check_bool "digraph" true (contains dot "digraph");
        check_bool "state a" true (contains dot "a");
        check_bool "label p" true (contains dot "[p]");
        check_bool "edge label" true (contains dot "x / y");
        check_bool "initial doublecircle" true (contains dot "doublecircle"));
    test "full fan-out collapses to a star edge" (fun () ->
        let chaotic =
          Mechaml_core.Chaos.chaotic_automaton ~name:"c" ~inputs:[ "i" ] ~outputs:[ "o" ]
        in
        let dot = Dot.of_automaton chaotic in
        check_bool "star edge" true (contains dot "label=\"*\""));
    test "highlighting marks states" (fun () ->
        let dot = Dot.of_automaton ~highlight:[ 0 ] (simple ()) in
        check_bool "filled" true (contains dot "lightyellow"));
    test "quotes are escaped" (fun () ->
        let m =
          automaton ~name:"with\"quote" ~inputs:[] ~outputs:[]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        check_bool "escaped" true (contains (Dot.of_automaton m) "\\\""));
    test "save writes the file" (fun () ->
        let path = Filename.temp_file "mechaml" ".dot" in
        Dot.save ~path (Dot.of_automaton (simple ()));
        let ic = open_in path in
        let len = in_channel_length ic in
        close_in ic;
        Sys.remove path;
        check_bool "non-empty" true (len > 0));
    test "listing renderer prints sender and receiver" (fun () ->
        let left =
          automaton ~name:"L" ~inputs:[ "pong" ] ~outputs:[ "ping" ]
            ~trans:[ ("l0", [], [ "ping" ], "l1"); ("l1", [ "pong" ], [], "l0") ]
            ~initial:[ "l0" ] ()
        in
        let right =
          automaton ~name:"R" ~inputs:[ "ping" ] ~outputs:[ "pong" ]
            ~trans:[ ("r0", [ "ping" ], [], "r1"); ("r1", [], [ "pong" ], "r0") ]
            ~initial:[ "r0" ] ()
        in
        let p = Compose.parallel left right in
        let t = List.hd (Automaton.transitions_from p.Compose.auto 0) in
        let run =
          Run.regular ~states:[ 0; t.Automaton.dst ]
            ~io:[ (t.Automaton.input, t.Automaton.output) ]
        in
        let s = Listing.render ~left_name:"alice" ~right_name:"bob" p run in
        check_bool "left state" true (contains s "alice.l0");
        check_bool "right state" true (contains s "bob.r0");
        check_bool "sender marked" true (contains s "alice.ping!");
        check_bool "receiver marked" true (contains s "bob.ping?"));
    test "listing renderer marks deadlock runs" (fun () ->
        let m =
          automaton ~name:"L" ~inputs:[] ~outputs:[] ~trans:[ ("a", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let r =
          automaton ~name:"R" ~inputs:[] ~outputs:[] ~trans:[ ("b", [], [], "b") ]
            ~initial:[ "b" ] ()
        in
        let p = Compose.parallel m r in
        let run =
          Run.deadlocking ~states:[ 0 ] ~io:[ (Mechaml_util.Bitset.empty, Mechaml_util.Bitset.empty) ]
        in
        check_bool "deadlock marker" true (contains (Listing.render ~left_name:"l" ~right_name:"r" p run) "<deadlock>"));
  ]

let () = Alcotest.run "dot" [ ("unit", unit_tests) ]
