module Universe = Mechaml_ts.Universe
module Bitset = Mechaml_util.Bitset
open Helpers

let u = Universe.of_list [ "a"; "b"; "c" ]

let unit_tests =
  [
    test "size and order" (fun () ->
        check_int "size" 3 (Universe.size u);
        check_int "index a" 0 (Universe.index u "a");
        check_int "index c" 2 (Universe.index u "c");
        check_string "name 1" "b" (Universe.name u 1));
    test "mem and index_opt" (fun () ->
        check_bool "mem b" true (Universe.mem u "b");
        check_bool "mem z" false (Universe.mem u "z");
        Alcotest.(check (option int)) "index_opt" (Some 2) (Universe.index_opt u "c");
        Alcotest.(check (option int)) "index_opt missing" None (Universe.index_opt u "z"));
    test "unknown lookups raise" (fun () ->
        (match Universe.index u "nope" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
        match Universe.name u 7 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "duplicates rejected" (fun () ->
        match Universe.of_list [ "x"; "x" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "too many names rejected" (fun () ->
        match Universe.of_list (List.init 63 (Printf.sprintf "s%d")) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "equal and disjoint" (fun () ->
        check_bool "equal self" true (Universe.equal u (Universe.of_list [ "a"; "b"; "c" ]));
        check_bool "not equal reordered" false (Universe.equal u (Universe.of_list [ "b"; "a"; "c" ]));
        check_bool "disjoint" true (Universe.disjoint u (Universe.of_list [ "x" ]));
        check_bool "overlap" false (Universe.disjoint u (Universe.of_list [ "c" ])));
    test "union preserves left indices" (fun () ->
        let v = Universe.of_list [ "x"; "y" ] in
        let w = Universe.union u v in
        check_int "size" 5 (Universe.size w);
        check_int "a keeps 0" 0 (Universe.index w "a");
        check_int "x shifted" 3 (Universe.index w "x"));
    test "union requires disjoint" (fun () ->
        match Universe.union u (Universe.of_list [ "c"; "d" ]) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "embed reindexes by name" (fun () ->
        let small = Universe.of_list [ "c"; "a" ] in
        let s = Universe.set_of_names small [ "c"; "a" ] in
        let embedded = Universe.embed small ~into:u s in
        Alcotest.(check (list string)) "names preserved" [ "a"; "c" ]
          (Universe.names_of_set u embedded));
    test "restrict drops foreign names" (fun () ->
        let big = Universe.of_list [ "a"; "z"; "c" ] in
        let s = Universe.set_of_names big [ "a"; "z"; "c" ] in
        let r = Universe.restrict big ~to_:u s in
        Alcotest.(check (list string)) "kept" [ "a"; "c" ] (Universe.names_of_set u r));
    test "set_of_names / names_of_set roundtrip" (fun () ->
        let s = Universe.set_of_names u [ "b"; "a" ] in
        Alcotest.(check (list string)) "sorted by index" [ "a"; "b" ] (Universe.names_of_set u s);
        check_int "cardinal" 2 (Bitset.cardinal s));
    test "pp_set" (fun () ->
        check_string "render" "{a, c}"
          (Format.asprintf "%a" (Universe.pp_set u) (Universe.set_of_names u [ "c"; "a" ])));
    test "empty universe" (fun () ->
        check_int "size 0" 0 (Universe.size Universe.empty);
        Alcotest.(check (list string)) "no names" [] (Universe.to_list Universe.empty));
  ]

let () = Alcotest.run "universe" [ ("unit", unit_tests) ]
