module Pp = Mechaml_util.Pp
open Helpers

let unit_tests =
  [
    test "comma_list" (fun () ->
        check_string "three" "1, 2, 3"
          (Format.asprintf "%a" (Pp.comma_list Format.pp_print_int) [ 1; 2; 3 ]);
        check_string "empty" "" (Format.asprintf "%a" (Pp.comma_list Format.pp_print_int) []));
    test "semi_list" (fun () ->
        check_string "two" "a; b"
          (Format.asprintf "%a" (Pp.semi_list Format.pp_print_string) [ "a"; "b" ]));
    test "str formats" (fun () -> check_string "interp" "x=3" (Pp.str "x=%d" 3));
    test "table aligns columns" (fun () ->
        let rendered = Pp.table ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "long"; "23" ] ] in
        let lines = String.split_on_char '\n' rendered in
        check_int "4 lines" 4 (List.length lines);
        (* all lines same width *)
        let widths = List.map String.length lines in
        check_bool "uniform width" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    test "table tolerates ragged rows" (fun () ->
        let rendered = Pp.table ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
        check_bool "renders" true (String.length rendered > 0));
  ]

let () = Alcotest.run "pp" [ ("unit", unit_tests) ]
