test/test_flaky.mli:
