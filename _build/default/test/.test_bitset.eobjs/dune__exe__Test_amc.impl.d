test/test_amc.ml: Alcotest Families Helpers List Mechaml_core Mechaml_learnlib Mechaml_logic Mechaml_mc Mechaml_scenarios Printf Protocol Railcab
