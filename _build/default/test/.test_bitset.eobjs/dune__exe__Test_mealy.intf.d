test/test_mealy.mli:
