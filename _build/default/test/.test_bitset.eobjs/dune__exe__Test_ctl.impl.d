test/test_ctl.ml: Alcotest Helpers List Mechaml_logic Printf
