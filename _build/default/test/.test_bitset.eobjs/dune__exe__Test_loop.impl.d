test/test_loop.ml: Alcotest Families Format Helpers List Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_scenarios Mechaml_testing Mechaml_ts Printf Protocol Railcab String
