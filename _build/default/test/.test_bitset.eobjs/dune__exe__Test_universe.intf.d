test/test_universe.mli:
