test/test_lstar.ml: Alcotest Families Helpers List Mechaml_learnlib Mechaml_legacy Mechaml_scenarios Printf Protocol Railcab
