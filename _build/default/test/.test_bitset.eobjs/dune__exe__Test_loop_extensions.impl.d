test/test_loop_extensions.ml: Alcotest Families Helpers List Mechaml_core Mechaml_logic Mechaml_mc Mechaml_scenarios Mechaml_ts Printf Railcab
