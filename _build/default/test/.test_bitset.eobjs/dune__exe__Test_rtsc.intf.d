test/test_rtsc.mli:
