test/test_rtsc.ml: Alcotest Fun Helpers List Mechaml_rtsc Mechaml_ts Mechaml_util Printf String
