test/test_universe.ml: Alcotest Format Helpers List Mechaml_ts Mechaml_util Printf
