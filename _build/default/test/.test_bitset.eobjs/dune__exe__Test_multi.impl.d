test/test_multi.ml: Alcotest Helpers List Mechaml_core Mechaml_legacy Mechaml_logic Mechaml_ts
