test/test_wmethod.ml: Alcotest Families Helpers List Mechaml_learnlib Mechaml_legacy Mechaml_scenarios Protocol
