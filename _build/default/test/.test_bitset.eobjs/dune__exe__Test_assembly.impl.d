test/test_assembly.ml: Alcotest Helpers List Mechaml_logic Mechaml_mc Mechaml_muml Mechaml_scenarios Mechaml_ts
