test/test_incomplete.ml: Alcotest Format Helpers List Mechaml_core Mechaml_legacy Mechaml_ts String
