test/test_shrink.mli:
