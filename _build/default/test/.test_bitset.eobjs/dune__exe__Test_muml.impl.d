test/test_muml.ml: Alcotest Helpers Mechaml_logic Mechaml_mc Mechaml_muml Mechaml_rtsc Mechaml_ts
