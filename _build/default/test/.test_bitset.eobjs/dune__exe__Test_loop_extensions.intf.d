test/test_loop_extensions.mli:
