test/test_mc.ml: Alcotest Array Helpers Mechaml_logic Mechaml_mc
