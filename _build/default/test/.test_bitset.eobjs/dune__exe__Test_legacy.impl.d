test/test_legacy.ml: Alcotest Format Helpers List Mechaml_legacy Mechaml_ts
