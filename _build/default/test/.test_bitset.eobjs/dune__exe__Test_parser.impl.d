test/test_parser.ml: Alcotest Helpers Mechaml_logic Printf String
