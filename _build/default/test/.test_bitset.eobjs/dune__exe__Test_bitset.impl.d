test/test_bitset.ml: Alcotest Format Helpers List Mechaml_util QCheck
