test/test_dfa.ml: Alcotest Helpers List Mechaml_learnlib Printf
