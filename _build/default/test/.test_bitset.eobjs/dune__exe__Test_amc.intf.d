test/test_amc.mli:
