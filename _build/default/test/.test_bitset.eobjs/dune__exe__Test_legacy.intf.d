test/test_legacy.mli:
