test/test_reach.ml: Alcotest Array Helpers List Mechaml_ts Option
