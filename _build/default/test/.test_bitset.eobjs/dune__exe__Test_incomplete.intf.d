test/test_incomplete.mli:
