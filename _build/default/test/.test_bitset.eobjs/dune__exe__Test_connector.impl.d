test/test_connector.ml: Alcotest Helpers List Mechaml_logic Mechaml_mc Mechaml_muml Mechaml_ts Mechaml_util
