test/test_loop.mli:
