test/test_simulation.ml: Alcotest Helpers Mechaml_ts
