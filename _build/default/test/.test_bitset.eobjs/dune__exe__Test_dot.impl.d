test/test_dot.ml: Alcotest Filename Helpers List Mechaml_core Mechaml_scenarios Mechaml_ts Mechaml_util String Sys
