test/test_wmethod.mli:
