test/test_properties.ml: Alcotest Array Fun Helpers List Mechaml_core Mechaml_learnlib Mechaml_legacy Mechaml_logic Mechaml_mc Mechaml_scenarios Mechaml_ts Mechaml_util Printf QCheck
