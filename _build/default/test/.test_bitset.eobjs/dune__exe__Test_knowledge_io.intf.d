test/test_knowledge_io.mli:
