test/test_simplify.ml: Alcotest Helpers List Mechaml_logic Mechaml_mc Mechaml_ts Mechaml_util Printf QCheck
