test/test_onthefly.ml: Alcotest Helpers List Mechaml_logic Mechaml_mc Mechaml_scenarios Mechaml_ts Printf
