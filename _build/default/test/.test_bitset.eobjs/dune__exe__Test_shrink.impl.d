test/test_shrink.ml: Alcotest Helpers List Mechaml_legacy Mechaml_scenarios Mechaml_testing Printf
