test/test_muml.mli:
