test/test_testcase.ml: Alcotest Format Helpers Mechaml_legacy Mechaml_scenarios Mechaml_testing Mechaml_ts String
