test/test_textio.ml: Alcotest Filename Helpers Mechaml_scenarios Mechaml_ts String Sys
