test/test_testcase.mli:
