test/test_compose.ml: Alcotest Helpers List Mechaml_ts
