test/test_timed.ml: Alcotest Fun Helpers List Mechaml_core Mechaml_logic Mechaml_mc Mechaml_scenarios Mechaml_testing Mechaml_ts
