test/test_run.ml: Alcotest Format Helpers List Mechaml_ts Mechaml_util String
