test/test_connector.mli:
