test/test_mealy.ml: Alcotest Format Helpers List Mechaml_learnlib Mechaml_ts
