test/test_automaton.ml: Alcotest Format Helpers List Mechaml_ts Mechaml_util String
