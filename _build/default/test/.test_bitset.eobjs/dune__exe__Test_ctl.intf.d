test/test_ctl.mli:
