test/test_merge.ml: Alcotest Format Helpers List Mechaml_core Mechaml_legacy Mechaml_mc Mechaml_muml Mechaml_scenarios Mechaml_ts String
