test/test_knowledge_io.ml: Alcotest Filename Helpers List Mechaml_core Mechaml_scenarios Sys
