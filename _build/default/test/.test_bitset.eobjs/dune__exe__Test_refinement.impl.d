test/test_refinement.ml: Alcotest Helpers Mechaml_ts
