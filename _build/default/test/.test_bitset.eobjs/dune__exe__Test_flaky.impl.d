test/test_flaky.ml: Alcotest Helpers Mechaml_core Mechaml_legacy Mechaml_scenarios String
