test/test_witness.ml: Alcotest Helpers List Mechaml_logic Mechaml_mc Mechaml_ts String
