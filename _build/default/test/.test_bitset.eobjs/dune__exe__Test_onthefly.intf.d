test/test_onthefly.mli:
