test/test_textio.mli:
