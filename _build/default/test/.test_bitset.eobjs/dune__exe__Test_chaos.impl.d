test/test_chaos.ml: Alcotest Helpers List Mechaml_core Mechaml_legacy Mechaml_scenarios Mechaml_ts Mechaml_util Printf
