test/test_pp.ml: Alcotest Format Helpers List Mechaml_util String
