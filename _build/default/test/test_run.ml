module Run = Mechaml_ts.Run
module Universe = Mechaml_ts.Universe
module Bitset = Mechaml_util.Bitset
open Helpers

let m =
  automaton ~inputs:[ "x" ] ~outputs:[ "y" ]
    ~trans:[ ("a", [ "x" ], [ "y" ], "b"); ("b", [], [], "a") ]
    ~initial:[ "a" ] ()

let x = Bitset.singleton 0

let y = Bitset.singleton 0

let e = Bitset.empty

let unit_tests =
  [
    test "initial run" (fun () ->
        let r = Run.initial 0 in
        check_int "length" 0 (Run.length r);
        check_int "final" 0 (Run.final_state r);
        check_bool "valid" true (Run.is_run_of m r));
    test "regular run validation" (fun () ->
        let r = Run.regular ~states:[ 0; 1; 0 ] ~io:[ (x, y); (e, e) ] in
        check_bool "valid" true (Run.is_run_of m r);
        check_int "length" 2 (Run.length r);
        check_int "final" 0 (Run.final_state r));
    test "invalid step rejected by is_run_of" (fun () ->
        let r = Run.regular ~states:[ 0; 1 ] ~io:[ (e, e) ] in
        check_bool "wrong io" false (Run.is_run_of m r);
        let r2 = Run.regular ~states:[ 1; 0 ] ~io:[ (e, e) ] in
        check_bool "wrong initial" false (Run.is_run_of m r2));
    test "length invariant enforced" (fun () ->
        (match Run.regular ~states:[ 0; 1 ] ~io:[] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "regular too few ios");
        (match Run.deadlocking ~states:[ 0 ] ~io:[] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "deadlock needs final io");
        match Run.regular ~states:[] ~io:[] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "empty states");
    test "deadlock run semantics" (fun () ->
        (* state b refuses x/y *)
        let r = Run.deadlocking ~states:[ 0; 1 ] ~io:[ (x, y); (x, y) ] in
        check_bool "valid deadlock run" true (Run.is_run_of m r);
        (* but b accepts -/-, so that refusal claim is wrong *)
        let r2 = Run.deadlocking ~states:[ 0; 1 ] ~io:[ (x, y); (e, e) ] in
        check_bool "claimed refusal actually accepted" false (Run.is_run_of m r2));
    test "append_step and seal_deadlock" (fun () ->
        let r = Run.append_step (Run.initial 0) (x, y) 1 in
        check_int "grew" 1 (Run.length r);
        let d = Run.seal_deadlock r (x, y) in
        check_bool "now deadlock" true d.Run.deadlock;
        (match Run.append_step d (e, e) 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "append after deadlock");
        match Run.seal_deadlock d (e, e) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "double seal");
    test "trace and state_sequence project" (fun () ->
        let r = Run.regular ~states:[ 0; 1 ] ~io:[ (x, y) ] in
        Alcotest.(check (list int)) "states" [ 0; 1 ] (Run.state_sequence r);
        check_int "trace length" 1 (List.length (Run.trace r)));
    test "map_states and map_io" (fun () ->
        let r = Run.regular ~states:[ 0; 1 ] ~io:[ (x, y) ] in
        let r' = Run.map_states (fun s -> s + 10) r in
        Alcotest.(check (list int)) "mapped" [ 10; 11 ] (Run.state_sequence r');
        let r'' = Run.map_io (fun _ -> (e, e)) r in
        check_bool "io mapped" true (List.for_all (fun (a, b) -> Bitset.is_empty a && Bitset.is_empty b) (Run.trace r'')));
    test "pp renders steps" (fun () ->
        let r = Run.regular ~states:[ 0; 1 ] ~io:[ (x, y) ] in
        let s = Format.asprintf "%a" (Run.pp m) r in
        check_bool "nonempty" true (String.length s > 0));
  ]

let () = Alcotest.run "run" [ ("unit", unit_tests) ]
