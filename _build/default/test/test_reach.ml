module Automaton = Mechaml_ts.Automaton
module Reach = Mechaml_ts.Reach
module Run = Mechaml_ts.Run
open Helpers

let chain () =
  automaton ~inputs:[ "x" ] ~outputs:[]
    ~trans:
      [
        ("a", [ "x" ], [], "b");
        ("b", [ "x" ], [], "c");
        ("orphan", [ "x" ], [], "a");
        ("c", [], [], "c");
      ]
    ~initial:[ "a" ] ()

let unit_tests =
  [
    test "reachable excludes orphans" (fun () ->
        let m = chain () in
        let r = Reach.reachable m in
        check_bool "a" true r.(Automaton.state_index m "a");
        check_bool "c" true r.(Automaton.state_index m "c");
        check_bool "orphan" false r.(Automaton.state_index m "orphan");
        check_int "count" 3 (Reach.reachable_count m));
    test "prune drops unreachable states" (fun () ->
        let m = Reach.prune (chain ()) in
        check_int "3 states" 3 (Automaton.num_states m);
        Alcotest.(check (option int)) "orphan gone" None (Automaton.state_index_opt m "orphan");
        check_string "names preserved" "a" (Automaton.state_name m 0));
    test "blocking_states on reachable part only" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~trans:[ ("a", [], [], "dead"); ("unreached_dead", [], [], "unreached_dead2") ]
            ~initial:[ "a" ] ()
        in
        let blocking = Reach.blocking_states m in
        check_int "only the reachable dead state" 1 (List.length blocking);
        check_string "it is 'dead'" "dead" (Automaton.state_name m (List.hd blocking)));
    test "shortest_run_to finds the shortest" (fun () ->
        let m = chain () in
        match Reach.shortest_run_to m (fun s -> Automaton.state_name m s = "c") with
        | None -> Alcotest.fail "should reach c"
        | Some r ->
          check_int "2 steps" 2 (Run.length r);
          check_bool "is a run" true (Run.is_run_of m r));
    test "shortest_run_to with unreachable target" (fun () ->
        let m = chain () in
        check_bool "none" true
          (Reach.shortest_run_to m (fun s -> Automaton.state_name m s = "orphan") = None));
    test "shortest_run_to trivial when initial matches" (fun () ->
        let m = chain () in
        match Reach.shortest_run_to m (fun s -> Automaton.state_name m s = "a") with
        | Some r -> check_int "0 steps" 0 (Run.length r)
        | None -> Alcotest.fail "initial state matches");
    test "dfs_run_to finds some run" (fun () ->
        let m = chain () in
        match Reach.dfs_run_to m (fun s -> Automaton.state_name m s = "c") with
        | None -> Alcotest.fail "should reach c"
        | Some r ->
          check_bool "is a run" true (Run.is_run_of m r);
          check_string "ends at c" "c" (Automaton.state_name m (Run.final_state r)));
    test "dfs may find longer runs than bfs" (fun () ->
        (* Diamond with a long detour declared first: DFS takes it. *)
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~trans:
              [
                ("s", [], [], "long1");
                ("long1", [], [], "long2");
                ("long2", [], [], "goal");
                ("s", [], [], "goal");
              ]
            ~initial:[ "s" ] ()
        in
        let bfs = Option.get (Reach.shortest_run_to m (fun s -> Automaton.state_name m s = "goal")) in
        let dfs = Option.get (Reach.dfs_run_to m (fun s -> Automaton.state_name m s = "goal")) in
        check_int "bfs shortest" 1 (Run.length bfs);
        check_int "dfs takes the detour" 3 (Run.length dfs));
  ]

let () = Alcotest.run "reach" [ ("unit", unit_tests) ]
