module Wmethod = Mechaml_learnlib.Wmethod
module Mealy = Mechaml_learnlib.Mealy
module Oracle = Mechaml_learnlib.Oracle
module Lstar = Mechaml_learnlib.Lstar
module Blackbox = Mechaml_legacy.Blackbox
open Mechaml_scenarios
open Helpers

let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender

let truth () = Mealy.of_automaton ~alphabet Protocol.sender_correct

let unit_tests =
  [
    test "transition cover reaches every state and transition" (fun () ->
        let m = truth () in
        let p = Wmethod.transition_cover m in
        check_bool "contains epsilon" true (List.mem [] p);
        (* every state is the endpoint of some cover word *)
        let reached = List.sort_uniq compare (List.map (Mealy.state_after m) p) in
        check_int "all states covered" (Mealy.num_states m) (List.length reached);
        (* prefix-closed-ish: every word's parent is present *)
        check_bool "extensions present" true
          (List.length p >= Mealy.num_states m * List.length alphabet));
    test "suite grows exponentially with extra states (EXP-T7)" (fun () ->
        let m = truth () in
        let words0, _ = Wmethod.suite_size ~hypothesis:m ~extra_states:0 in
        let words1, _ = Wmethod.suite_size ~hypothesis:m ~extra_states:1 in
        let words2, _ = Wmethod.suite_size ~hypothesis:m ~extra_states:2 in
        check_bool "monotone" true (words0 < words1 && words1 < words2);
        (* ratio roughly the alphabet size *)
        check_bool "exponential-ish" true (words2 > 2 * words0));
    test "suite passes against the machine itself" (fun () ->
        let box = Blackbox.of_automaton Protocol.sender_correct in
        let oracle = Oracle.create ~box ~alphabet in
        check_bool "no counterexample" true
          (Wmethod.find_counterexample oracle ~hypothesis:(truth ()) ~extra_states:1 = None));
    test "suite finds any wrong hypothesis within the bound" (fun () ->
        (* hypothesis: a one-state machine that answers everything blocked
           except data0 forever — clearly wrong *)
        let wrong =
          Mealy.create ~alphabet
            ~trans:[| [| (Mealy.Out [ "data0" ], 0); (Mealy.Blocked, 0); (Mealy.Blocked, 0) |] |]
            ()
        in
        let box = Blackbox.of_automaton Protocol.sender_correct in
        let oracle = Oracle.create ~box ~alphabet in
        match Wmethod.find_counterexample oracle ~hypothesis:wrong ~extra_states:3 with
        | Some w ->
          (* the word indeed distinguishes *)
          check_bool "distinguishes" true (Oracle.query oracle w <> Mealy.run_word wrong w)
        | None -> Alcotest.fail "must find a counterexample");
    test "find_counterexample counts an equivalence query" (fun () ->
        let box = Blackbox.of_automaton Protocol.sender_correct in
        let oracle = Oracle.create ~box ~alphabet in
        ignore (Wmethod.find_counterexample oracle ~hypothesis:(truth ()) ~extra_states:0);
        check_int "counted" 1 (Oracle.stats oracle).Oracle.equivalence_queries);
    test "conformance distinguishes lock depths beyond the naive horizon" (fun () ->
        (* two locks with different secrets agree on short words; the
           W-method with enough extra states tells them apart *)
        let n = 4 in
        let real = Families.lock_legacy ~n in
        let box = Blackbox.of_automaton real in
        let oracle = Oracle.create ~box ~alphabet:Families.lock_alphabet in
        (* hypothesis: a lock that never opens (single locked state) *)
        let hyp =
          Mealy.create ~alphabet:Families.lock_alphabet
            ~trans:[| [| (Mealy.Out [], 0); (Mealy.Out [], 0); (Mealy.Out [], 0) |] |]
            ()
        in
        match Wmethod.find_counterexample oracle ~hypothesis:hyp ~extra_states:n with
        | Some w -> check_bool "at least n symbols needed" true (List.length w >= n)
        | None -> Alcotest.fail "the real lock opens");
  ]

let () = Alcotest.run "wmethod" [ ("unit", unit_tests) ]
