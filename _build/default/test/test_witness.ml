module Sat = Mechaml_mc.Sat
module Witness = Mechaml_mc.Witness
module Checker = Mechaml_mc.Checker
module Run = Mechaml_ts.Run
module Automaton = Mechaml_ts.Automaton
module Ctl = Mechaml_logic.Ctl
module Parser = Mechaml_logic.Parser
open Helpers

let diamond () =
  automaton ~inputs:[] ~outputs:[]
    ~states:[ ("s", []); ("l1", []); ("l2", []); ("bad", [ "bad" ]) ]
    ~trans:
      [
        ("s", [], [], "l1");
        ("l1", [], [], "l2");
        ("l2", [], [], "bad");
        ("s", [], [], "bad");
        ("bad", [], [], "bad");
      ]
    ~initial:[ "s" ] ()

let witness ?(strategy = Witness.Bfs_shortest) m f =
  let env = Sat.create m in
  Witness.witness env ~strategy ~start:(List.hd m.Automaton.initial) (Parser.parse_exn f)

let unit_tests =
  [
    test "EF witness is a valid run ending in the target" (fun () ->
        let m = diamond () in
        let { Witness.run; _ } = witness m "E<> bad" in
        check_bool "valid run" true (Run.is_run_of m run);
        check_string "ends at bad" "bad" (Automaton.state_name m (Run.final_state run)));
    test "BFS strategy finds the shortest EF witness" (fun () ->
        let m = diamond () in
        let { Witness.run; _ } = witness m "E<> bad" in
        check_int "one step" 1 (Run.length run));
    test "DFS strategy may take the long way" (fun () ->
        let m = diamond () in
        let { Witness.run; _ } = witness ~strategy:Witness.Dfs_first m "E<> bad" in
        check_bool "valid" true (Run.is_run_of m run);
        check_int "three steps through the detour" 3 (Run.length run));
    test "witness demands the formula holds" (fun () ->
        let m = diamond () in
        match witness m "A[] bad" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "A[] bad does not hold at s");
    test "EU witness stays within the constraint" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", [ "p" ]); ("b", [ "p" ]); ("c", []); ("goal", [ "g" ]) ]
            ~trans:
              [
                ("a", [], [], "b");
                ("b", [], [], "goal");
                ("a", [], [], "c");
                ("c", [], [], "goal");
                ("goal", [], [], "goal");
              ]
            ~initial:[ "a" ] ()
        in
        let { Witness.run; _ } = witness m "E (p U g)" in
        check_bool "valid" true (Run.is_run_of m run);
        (* every non-final state on the run satisfies p *)
        let states = Run.state_sequence run in
        let prefix = List.filteri (fun i _ -> i < List.length states - 1) states in
        check_bool "prefix satisfies p" true
          (List.for_all (fun s -> Automaton.has_prop m s "p") prefix));
    test "EG witness loops or blocks" (fun () ->
        let m = diamond () in
        let { Witness.run; explanation; _ } = witness m "EG true" in
        check_bool "valid" true (Run.is_run_of m run);
        check_bool "mentions loop" true
          (String.length explanation > 0));
    test "EX witness takes one step" (fun () ->
        let m = diamond () in
        let { Witness.run; _ } = witness m "EX true" in
        check_bool "valid" true (Run.is_run_of m run);
        check_bool "at least one step" true (Run.length run >= 1));
    test "checker produces counterexamples for AG violations" (fun () ->
        let m = diamond () in
        match Checker.check m (Parser.parse_exn "A[] (not bad)") with
        | Checker.Violated { witness; _ } ->
          check_bool "valid" true (Run.is_run_of m witness);
          check_string "reaches bad" "bad"
            (Automaton.state_name m (Run.final_state witness))
        | Checker.Holds -> Alcotest.fail "should be violated");
    test "checker counterexample for deadlock reaches the blocking state" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~trans:[ ("a", [], [], "b"); ("b", [], [], "stuck") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m Ctl.deadlock_free with
        | Checker.Violated { witness; _ } ->
          check_string "ends at stuck" "stuck"
            (Automaton.state_name m (Run.final_state witness));
          check_int "shortest" 2 (Run.length witness)
        | Checker.Holds -> Alcotest.fail "stuck is a deadlock");
    test "bounded AF violation yields a finite avoiding run" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", []); ("b", []); ("g", [ "g" ]) ]
            ~trans:[ ("a", [], [], "b"); ("b", [], [], "b"); ("b", [], [], "g") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m (Parser.parse_exn "AF[1,2] g") with
        | Checker.Violated { witness; _ } ->
          check_bool "valid" true (Run.is_run_of m witness);
          check_bool "avoids g" true
            (List.for_all (fun s -> not (Automaton.has_prop m s "g")) (Run.state_sequence witness))
        | Checker.Holds -> Alcotest.fail "the b-loop avoids g");
    test "completeness: a safety violation is trace-complete evidence" (fun () ->
        let m = diamond () in
        match Checker.check m (Parser.parse_exn "A[] (not bad)") with
        | Checker.Violated { complete; _ } -> check_bool "complete" true complete
        | Checker.Holds -> Alcotest.fail "violated");
    test "completeness: a deadlock witness carries a residual claim" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~trans:[ ("a", [], [], "stuck") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m Ctl.deadlock_free with
        | Checker.Violated { complete; _ } -> check_bool "residual" false complete
        | Checker.Holds -> Alcotest.fail "violated");
    test "completeness: bounded-response violated by a surviving run is complete" (fun () ->
        (* b loops forever avoiding g: the EG window is fully walked *)
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", [ "p" ]); ("b", [ "p" ]) ]
            ~trans:[ ("a", [], [], "b"); ("b", [], [], "b") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m (Parser.parse_exn "AG (p -> AF[1,2] (not p))") with
        | Checker.Violated { complete; witness; _ } ->
          check_bool "complete" true complete;
          check_bool "window walked" true (Run.length witness >= 2)
        | Checker.Holds -> Alcotest.fail "violated");
    test "completeness: bounded-response violated only by blocking is residual" (fun () ->
        (* the run dies before the window can be satisfied *)
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", [ "p" ]); ("dead", [ "p" ]) ]
            ~trans:[ ("a", [], [], "dead") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m (Parser.parse_exn "AG (p -> AF[1,3] (not p))") with
        | Checker.Violated { complete; _ } -> check_bool "residual" false complete
        | Checker.Holds -> Alcotest.fail "violated");
    test "completeness: a closed EG lasso is complete evidence" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", [ "p" ]); ("b", [ "p" ]) ]
            ~trans:[ ("a", [], [], "b"); ("b", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m (Parser.parse_exn "AF (not p)") with
        | Checker.Violated { complete; explanation; _ } ->
          check_bool "complete" true complete;
          check_bool "loop noted" true (String.length explanation > 0)
        | Checker.Holds -> Alcotest.fail "violated");
    test "completeness: an EG path into a dead end is residual" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("a", [ "p" ]); ("dead", [ "p" ]) ]
            ~trans:[ ("a", [], [], "dead") ]
            ~initial:[ "a" ] ()
        in
        match Checker.check m (Parser.parse_exn "AF (not p)") with
        | Checker.Violated { complete; _ } -> check_bool "residual" false complete
        | Checker.Holds -> Alcotest.fail "violated");
  ]

let () = Alcotest.run "witness" [ ("unit", unit_tests) ]
