module Ctl = Mechaml_logic.Ctl
module Simplify = Mechaml_logic.Simplify
module Parser = Mechaml_logic.Parser
module Sat = Mechaml_mc.Sat
module Prng = Mechaml_util.Prng
open Helpers

let s f = Simplify.simplify (Parser.parse_exn f)

let expect input output =
  test (Printf.sprintf "%s ~> %s" input output) (fun () ->
      check_bool "simplified" true (Ctl.equal (s input) (Parser.parse_exn output)))

let unit_tests =
  [
    expect "p and true" "p";
    expect "true and p" "p";
    expect "p and false" "false";
    expect "p or false" "p";
    expect "p or true" "true";
    expect "p and p" "p";
    expect "p or p" "p";
    expect "not (not p)" "p";
    expect "not true" "false";
    expect "true -> p" "p";
    expect "false -> p" "true";
    expect "p -> true" "true";
    expect "p -> p" "true";
    expect "AG true" "true";
    expect "AG false" "false";
    expect "E<> false" "false";
    expect "AF true" "true";
    expect "EX true" "not deadlock";
    expect "AX false" "deadlock";
    expect "AX true" "true";
    expect "A (p U true)" "true";
    expect "E (p U false)" "false";
    expect "AG ((p or false) and true)" "AG p";
    test "bounded eventualities over true are NOT folded" (fun () ->
        check_bool "AF[2,3] true kept" true
          (Ctl.equal (s "AF[2,3] true") (Parser.parse_exn "AF[2,3] true"));
        check_bool "AG[2,3] false kept" true
          (Ctl.equal (s "AG[2,3] false") (Parser.parse_exn "AG[2,3] false")));
    test "idempotent" (fun () ->
        let f = Parser.parse_exn "AG ((not (p and true)) or AF[1,3] (q or q))" in
        let once = Simplify.simplify f in
        check_bool "fixed point" true (Ctl.equal once (Simplify.simplify once)));
  ]

(* random automata / formulas as in test_properties, specialised here *)
let random_auto seed =
  let rng = Prng.create ~seed in
  let n = 1 + Prng.int rng 4 in
  let b =
    Mechaml_ts.Automaton.Builder.create ~name:"m" ~inputs:[ "i" ] ~outputs:[]
      ~props:[ "p"; "q" ] ()
  in
  let name i = Printf.sprintf "s%d" i in
  for i = 0 to n - 1 do
    let lbl = List.filter (fun _ -> Prng.bool rng) [ "p"; "q" ] in
    ignore (Mechaml_ts.Automaton.Builder.add_state b ~props:lbl (name i))
  done;
  for i = 0 to n - 1 do
    for _ = 1 to Prng.int rng 3 do
      let ins = if Prng.bool rng then [ "i" ] else [] in
      Mechaml_ts.Automaton.Builder.add_trans b ~src:(name i) ~inputs:ins
        ~dst:(name (Prng.int rng n)) ()
    done
  done;
  Mechaml_ts.Automaton.Builder.set_initial b [ name 0 ];
  Mechaml_ts.Automaton.Builder.build b

let random_formula seed =
  let rng = Prng.create ~seed:(seed lxor 0x51317) in
  let atom () =
    Prng.pick rng [ Ctl.True; Ctl.False; Ctl.Prop "p"; Ctl.Prop "q"; Ctl.Deadlock ]
  in
  let rec go depth =
    if depth = 0 then atom ()
    else
      match Prng.int rng 10 with
      | 0 -> Ctl.Not (go (depth - 1))
      | 1 -> Ctl.And (go (depth - 1), go (depth - 1))
      | 2 -> Ctl.Or (go (depth - 1), go (depth - 1))
      | 3 -> Ctl.Implies (go (depth - 1), go (depth - 1))
      | 4 -> Ctl.Ag (None, go (depth - 1))
      | 5 -> Ctl.Ef (None, go (depth - 1))
      | 6 -> Ctl.Af ((if Prng.bool rng then None else Some (Ctl.bounds 0 2)), go (depth - 1))
      | 7 -> Ctl.Eg ((if Prng.bool rng then None else Some (Ctl.bounds 1 3)), go (depth - 1))
      | 8 -> Ctl.Ax (go (depth - 1))
      | _ -> Ctl.Eu (None, go (depth - 1), go (depth - 1))
  in
  go 3

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

let property_tests =
  [
    qcheck ~count:200 "simplification preserves satisfaction sets" seed_arb (fun seed ->
        let m = random_auto seed in
        let f = random_formula seed in
        let env = Sat.create m in
        Sat.sat env f = Sat.sat env (Simplify.simplify f));
    qcheck ~count:200 "simplification never grows the formula" seed_arb (fun seed ->
        let f = random_formula seed in
        Ctl.size (Simplify.simplify f) <= Ctl.size f);
    qcheck ~count:200 "simplification is idempotent" seed_arb (fun seed ->
        let f = Simplify.simplify (random_formula seed) in
        Ctl.equal f (Simplify.simplify f));
  ]

let () = Alcotest.run "simplify" [ ("unit", unit_tests); ("properties", property_tests) ]
