(* The three-role MergeCoordination scenario (composite context via
   Pattern.context_for) and the Coverage analysis. *)

module Merge = Mechaml_scenarios.Merge
module Loop = Mechaml_core.Loop
module Coverage = Mechaml_core.Coverage
module Conformance = Mechaml_core.Conformance
module Checker = Mechaml_mc.Checker
module Run = Mechaml_ts.Run
module Automaton = Mechaml_ts.Automaton
open Helpers

let unit_tests =
  [
    test "the MergeCoordination pattern verifies upfront" (fun () ->
        match Mechaml_muml.Pattern.verify Merge.pattern with
        | Checker.Holds -> ()
        | Checker.Violated { explanation; _ } -> Alcotest.fail explanation);
    test "the context composes the two peer roles" (fun () ->
        let props = Mechaml_ts.Universe.to_list Merge.context.Automaton.props in
        check_bool "arbiter props present" true (List.mem "arbiter.askA" props);
        check_bool "feederB props present" true (List.mem "feederB.merging" props);
        check_bool "feederA excluded" false (List.exists (fun p -> String.length p >= 8 && String.sub p 0 8 = "feederA.") props));
    test "the correct feeder is proved against the composite context" (fun () ->
        let r = Merge.run_correct () in
        (match r.Loop.verdict with Loop.Proved -> () | _ -> Alcotest.fail "expected Proved");
        check_bool "conforms" true (Conformance.conforms r.Loop.final_model Merge.feeder_correct));
    test "the pushy feeder violates exclusivity for real" (fun () ->
        let r = Merge.run_pushy () in
        match r.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Property; witness; product; _ } ->
          let final = Run.final_state witness in
          check_bool "both merging" true
            (Automaton.has_prop product.Mechaml_ts.Compose.auto final "feederA.merging"
            && Automaton.has_prop product.Mechaml_ts.Compose.auto final "feederB.merging")
        | _ -> Alcotest.fail "expected a real property violation");
    test "exact compositions agree" (fun () ->
        let labelled m =
          let props =
            List.init (Automaton.num_states m) (fun s ->
                Merge.label_of (Automaton.state_name m s))
            |> List.concat |> List.sort_uniq compare
          in
          let u = Mechaml_ts.Universe.of_list props in
          Automaton.relabel m ~props:u (fun s ->
              Mechaml_ts.Universe.set_of_names u (Merge.label_of (Automaton.state_name m s)))
        in
        let check_exact impl expected =
          let p = Mechaml_ts.Compose.parallel Merge.context (labelled impl) in
          Alcotest.(check bool) "exact" expected
            (Checker.holds p.Mechaml_ts.Compose.auto Merge.constraint_)
        in
        check_exact Merge.feeder_correct true;
        check_exact Merge.feeder_pushy false);
    test "coverage: everything context-relevant is known at a proof" (fun () ->
        let r = Merge.run_correct () in
        let c =
          Coverage.analyse ~context:Merge.context
            ~state_bound:Merge.box_correct.Mechaml_legacy.Blackbox.state_bound
            r.Loop.final_model
        in
        Alcotest.(check (float 0.001)) "relevant fraction" 1.0 (Coverage.relevant_fraction c);
        check_bool "explored a fraction of the whole space" true
          (Coverage.explored_fraction c < 0.5);
        check_bool "pp renders" true
          (String.length (Format.asprintf "%a" Coverage.pp c) > 0));
    test "coverage on the lock family reflects the context depth" (fun () ->
        let module F = Mechaml_scenarios.Families in
        let n = 16 and depth = 4 in
        let r =
          Loop.run ~label_of:F.lock_label_of ~context:(F.lock_context ~n ~depth)
            ~property:F.lock_property ~legacy:(F.lock_box ~n) ()
        in
        let c =
          Coverage.analyse ~context:(F.lock_context ~n ~depth) ~state_bound:(n + 1)
            r.Loop.final_model
        in
        Alcotest.(check (float 0.001)) "relevant covered" 1.0 (Coverage.relevant_fraction c);
        check_bool "small slice of the component" true (Coverage.explored_fraction c < 0.2));
    test "coverage of the trivial initial model is incomplete" (fun () ->
        let m = Mechaml_core.Synthesis.initial_model Merge.box_correct in
        let c = Coverage.analyse ~context:Merge.context ~state_bound:4 m in
        check_bool "nothing known yet" true (Coverage.relevant_fraction c < 1.0));
  ]

let () = Alcotest.run "merge" [ ("unit", unit_tests) ]
