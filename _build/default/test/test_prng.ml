module Prng = Mechaml_util.Prng
open Helpers

let unit_tests =
  [
    test "same seed, same stream" (fun () ->
        let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
        let xs = List.init 50 (fun _ -> Prng.int a 1000) in
        let ys = List.init 50 (fun _ -> Prng.int b 1000) in
        Alcotest.(check (list int)) "streams equal" xs ys);
    test "different seeds differ" (fun () ->
        let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
        let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
        let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
        check_bool "streams differ" true (xs <> ys));
    test "copy forks the state" (fun () ->
        let a = Prng.create ~seed:7 in
        ignore (Prng.int a 10);
        let b = Prng.copy a in
        check_int "same next draw" (Prng.int a 1000) (Prng.int b 1000));
    test "int respects bounds" (fun () ->
        let a = Prng.create ~seed:3 in
        for _ = 1 to 1000 do
          let v = Prng.int a 7 in
          check_bool "in range" true (v >= 0 && v < 7)
        done);
    test "int rejects non-positive bound" (fun () ->
        let a = Prng.create ~seed:3 in
        Alcotest.check_raises "zero" (Invalid_argument "Prng.int: bound must be positive")
          (fun () -> ignore (Prng.int a 0)));
    test "float respects bounds" (fun () ->
        let a = Prng.create ~seed:9 in
        for _ = 1 to 1000 do
          let v = Prng.float a 2.5 in
          check_bool "in range" true (v >= 0.0 && v < 2.5)
        done);
    test "bool is not constant" (fun () ->
        let a = Prng.create ~seed:11 in
        let draws = List.init 100 (fun _ -> Prng.bool a) in
        check_bool "sees true" true (List.mem true draws);
        check_bool "sees false" true (List.mem false draws));
    test "pick chooses members" (fun () ->
        let a = Prng.create ~seed:13 in
        for _ = 1 to 100 do
          check_bool "member" true (List.mem (Prng.pick a [ 1; 2; 3 ]) [ 1; 2; 3 ])
        done;
        Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list") (fun () ->
            ignore (Prng.pick a [])));
    test "shuffle permutes" (fun () ->
        let a = Prng.create ~seed:17 in
        let l = List.init 30 Fun.id in
        let s = Prng.shuffle a l in
        Alcotest.(check (list int)) "same multiset" l (List.sort compare s));
    test "split yields independent streams" (fun () ->
        let a = Prng.create ~seed:19 in
        let b = Prng.split a in
        let xs = List.init 10 (fun _ -> Prng.int a 1000) in
        let ys = List.init 10 (fun _ -> Prng.int b 1000) in
        check_bool "streams differ" true (xs <> ys));
    test "rough uniformity of int" (fun () ->
        let a = Prng.create ~seed:23 in
        let buckets = Array.make 10 0 in
        for _ = 1 to 10_000 do
          let v = Prng.int a 10 in
          buckets.(v) <- buckets.(v) + 1
        done;
        Array.iter
          (fun c -> check_bool "bucket within 30% of mean" true (c > 700 && c < 1300))
          buckets);
  ]

let () = Alcotest.run "prng" [ ("unit", unit_tests) ]
