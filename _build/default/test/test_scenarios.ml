module Railcab = Mechaml_scenarios.Railcab
module Protocol = Mechaml_scenarios.Protocol
module Families = Mechaml_scenarios.Families
module Labels = Mechaml_scenarios.Labels
module Pattern = Mechaml_muml.Pattern
module Component = Mechaml_muml.Component
module Checker = Mechaml_mc.Checker
module Refinement = Mechaml_ts.Refinement
module Automaton = Mechaml_ts.Automaton
open Helpers

let box_step session sym = session.Mechaml_legacy.Blackbox.step ~inputs:[ sym ]

let unit_tests =
  [
    test "hierarchical labels" (fun () ->
        Alcotest.(check (list string)) "two levels"
          [ "r.noConvoy"; "r.noConvoy::wait" ]
          (Labels.hierarchical ~prefix:"r." "noConvoy::wait");
        Alcotest.(check (list string)) "flat" [ "r.convoy" ]
          (Labels.hierarchical ~prefix:"r." "convoy"));
    test "DistanceCoordination pattern verifies upfront" (fun () ->
        match Pattern.verify Railcab.pattern with
        | Checker.Holds -> ()
        | Checker.Violated { explanation; _ } -> Alcotest.fail explanation);
    test "the front role alone satisfies reachability sanity" (fun () ->
        let m = Railcab.context in
        check_bool "can enter convoy" true
          (Checker.holds m (Mechaml_logic.Parser.parse_exn "E<> frontRole.convoy")));
    test "legacy_correct refines the rear role specification" (fun () ->
        (* label-blind check: the legacy component carries no labels *)
        let spec =
          Automaton.relabel
            (Mechaml_muml.Role.automaton Railcab.rear_role)
            ~props:Mechaml_ts.Universe.empty
            (fun _ -> Mechaml_util.Bitset.empty)
        in
        match Refinement.check ~concrete:Railcab.legacy_correct ~abstract:spec () with
        | Refinement.Refines -> ()
        | Refinement.Fails { reason; _ } ->
          Alcotest.fail
            (match reason with
            | Refinement.Label_mismatch -> "label mismatch"
            | Refinement.Missing_trace _ -> "missing trace"
            | Refinement.Unmatched_refusal _ -> "unmatched refusal"));
    test "legacy_conflicting does NOT refine the rear role" (fun () ->
        let spec =
          Automaton.relabel
            (Mechaml_muml.Role.automaton Railcab.rear_role)
            ~props:Mechaml_ts.Universe.empty
            (fun _ -> Mechaml_util.Bitset.empty)
        in
        match Refinement.check ~concrete:Railcab.legacy_conflicting ~abstract:spec () with
        | Refinement.Fails _ -> ()
        | Refinement.Refines -> Alcotest.fail "the faulty component must not conform");
    test "exact composition with the correct legacy is deadlock free" (fun () ->
        let p = Mechaml_ts.Compose.parallel Railcab.context Railcab.legacy_correct in
        check_bool "no deadlock" true
          (Checker.holds p.Mechaml_ts.Compose.auto Mechaml_logic.Ctl.deadlock_free));
    test "exact composition with the conflicting legacy violates the constraint" (fun () ->
        let labelled =
          let u = Mechaml_ts.Universe.of_list [ "rearRole.noConvoy"; "rearRole.convoy" ] in
          Automaton.relabel Railcab.legacy_conflicting ~props:u (fun s ->
              let name = Automaton.state_name Railcab.legacy_conflicting s in
              Mechaml_ts.Universe.set_of_names u
                (List.filter
                   (fun p -> Mechaml_ts.Universe.mem u p)
                   (Railcab.label_of name)))
        in
        let p = Mechaml_ts.Compose.parallel Railcab.context labelled in
        check_bool "constraint violated" false
          (Checker.holds p.Mechaml_ts.Compose.auto Railcab.constraint_));
    test "both legacy variants are valid black boxes" (fun () ->
        check_bool "correct deterministic" true
          (Automaton.input_deterministic Railcab.legacy_correct);
        check_bool "conflicting deterministic" true
          (Automaton.input_deterministic Railcab.legacy_conflicting);
        check_string "port" "rearRole" Railcab.box_correct.Mechaml_legacy.Blackbox.port);
    test "protocol receiver alternates" (fun () ->
        let p = Mechaml_ts.Compose.parallel Protocol.receiver Protocol.sender_correct in
        check_bool "deadlock free" true
          (Checker.holds p.Mechaml_ts.Compose.auto Mechaml_logic.Ctl.deadlock_free));
    test "lock secret is reproducible and binary" (fun () ->
        let s1 = Families.lock_secret ~n:10 and s2 = Families.lock_secret ~n:10 in
        Alcotest.(check (list string)) "deterministic" s1 s2;
        check_bool "over a/b" true (List.for_all (fun c -> c = "a" || c = "b") s1));
    test "lock legacy opens only on the full secret" (fun () ->
        let n = 5 in
        let box = Families.lock_box ~n in
        let session = box.Mechaml_legacy.Blackbox.connect () in
        let outs =
          List.map (fun sym -> box_step session sym) (Families.lock_secret ~n)
        in
        check_bool "silent until the last" true
          (List.for_all (fun o -> o = Some []) (List.filteri (fun i _ -> i < n - 1) outs));
        check_bool "opens at the end" true (List.nth outs (n - 1) = Some [ "open" ]));
    test "lock context never opens the lock" (fun () ->
        let n = 6 and depth = 3 in
        let p =
          Mechaml_ts.Compose.parallel
            (Families.lock_context ~n ~depth)
            (let u = Mechaml_ts.Universe.of_list [ "lock.unlocked" ] in
             Automaton.relabel (Families.lock_legacy ~n) ~props:u (fun s ->
                 Mechaml_ts.Universe.set_of_names u
                   (Families.lock_label_of (Automaton.state_name (Families.lock_legacy ~n) s))))
        in
        check_bool "AG not unlocked" true
          (Checker.holds p.Mechaml_ts.Compose.auto Families.lock_property));
    test "random machines are valid legacy components" (fun () ->
        List.iter
          (fun seed ->
            let m = Families.random_machine ~seed ~states:6 ~inputs:[ "i" ] ~outputs:[ "o" ] in
            check_bool "input-deterministic" true (Automaton.input_deterministic m);
            check_int "requested states" 6 (Automaton.num_states m))
          [ 1; 2; 3 ]);
    test "components built from roles pass conformance" (fun () ->
        let port = Mechaml_muml.Role.automaton Railcab.front_role in
        let comp = Component.make ~name:"Shuttle" ~ports:[ ("frontRole", port) ] in
        match Component.conforms_to comp ~role:Railcab.front_role with
        | Refinement.Refines -> ()
        | Refinement.Fails _ -> Alcotest.fail "role refines itself");
  ]

let () = Alcotest.run "scenarios" [ ("unit", unit_tests) ]
