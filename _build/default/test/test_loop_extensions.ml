(* The loop's optional extensions: grey-box initial knowledge and batched
   counterexamples (the paper's future-work item, Section 7). *)

module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Synthesis = Mechaml_core.Synthesis
module Conformance = Mechaml_core.Conformance
module Checker = Mechaml_mc.Checker
module Run = Mechaml_ts.Run
module Automaton = Mechaml_ts.Automaton
open Mechaml_scenarios
open Helpers

let unit_tests =
  [
    test "more_witnesses returns distinct nearest violations" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~states:[ ("bad1", [ "bad" ]); ("bad2", [ "bad" ]) ]
            ~trans:
              [
                ("s", [], [], "bad1");
                ("s", [], [], "mid");
                ("mid", [], [], "bad2");
                ("bad1", [], [], "bad1");
                ("bad2", [], [], "bad2");
                ("mid", [], [], "mid");
              ]
            ~initial:[ "s" ] ()
        in
        let runs = Checker.more_witnesses ~limit:3 m (Mechaml_logic.Parser.parse_exn "AG (not bad)") in
        check_int "two bad states found" 2 (List.length runs);
        let finals = List.map (fun r -> Automaton.state_name m (Run.final_state r)) runs in
        Alcotest.(check (list string)) "nearest first" [ "bad1"; "bad2" ]
          finals;
        List.iter (fun r -> check_bool "valid" true (Run.is_run_of m r)) runs);
    test "more_witnesses is empty when the property holds" (fun () ->
        let m = automaton ~inputs:[] ~outputs:[] ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] () in
        check_int "none" 0
          (List.length (Checker.more_witnesses m (Mechaml_logic.Parser.parse_exn "AG true"))));
    test "more_witnesses covers deadlock freedom" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[]
            ~trans:[ ("s", [], [], "d1"); ("s", [], [], "d2") ]
            ~initial:[ "s" ] ()
        in
        check_int "both deadlocks" 2
          (List.length (Checker.more_witnesses m Mechaml_logic.Ctl.deadlock_free)));
    test "grey-box knowledge reduces iterations" (fun () ->
        let baseline = Railcab.run_correct () in
        (* seed with half the component's transitions, as if documented *)
        let seeded_model =
          let m = Synthesis.initial_model Railcab.box_correct in
          let m =
            Incomplete.add_transition m ~src:"noConvoy::default"
              (Incomplete.interaction ~inputs:[] ~outputs:[ "convoyProposal" ])
              ~dst:"noConvoy::wait"
          in
          Incomplete.add_transition m ~src:"noConvoy::wait"
            (Incomplete.interaction ~inputs:[ "startConvoy" ] ~outputs:[])
            ~dst:"convoy::default"
        in
        let seeded =
          Loop.run ~label_of:Railcab.label_of ~initial_knowledge:seeded_model
            ~context:Railcab.context ~property:Railcab.constraint_ ~legacy:Railcab.box_correct ()
        in
        (match seeded.Loop.verdict with
        | Loop.Proved -> ()
        | _ -> Alcotest.fail "expected Proved");
        check_bool "fewer or equal iterations" true
          (List.length seeded.Loop.iterations <= List.length baseline.Loop.iterations);
        check_bool "fewer tests" true (seeded.Loop.tests_executed < baseline.Loop.tests_executed));
    test "grey-box knowledge is validated against the interface" (fun () ->
        let alien =
          Incomplete.create ~name:"x" ~inputs:[ "zzz" ] ~outputs:[] ~initial_state:"s"
        in
        match
          Loop.run ~initial_knowledge:alien ~context:Railcab.context
            ~property:Railcab.constraint_ ~legacy:Railcab.box_correct ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "wrong grey-box facts are exposed by conformance" (fun () ->
        (* the loop trusts the seed; a wrong seed breaks observation
           conformance, which the test suite can detect *)
        let wrong =
          Incomplete.add_refusal
            (Synthesis.initial_model Railcab.box_correct)
            ~state:"noConvoy::default" ~inputs:[]
        in
        check_bool "not conforming" false (Conformance.conforms wrong Railcab.legacy_correct));
    test "batched counterexamples do not change verdicts" (fun () ->
        List.iter
          (fun k ->
            let r =
              Loop.run ~counterexamples_per_iteration:k ~label_of:Railcab.label_of
                ~context:Railcab.context ~property:Railcab.constraint_
                ~legacy:Railcab.box_correct ()
            in
            match r.Loop.verdict with
            | Loop.Proved ->
              check_bool "conforms" true
                (Conformance.conforms r.Loop.final_model Railcab.legacy_correct)
            | _ -> Alcotest.fail (Printf.sprintf "k=%d should prove" k))
          [ 1; 2; 4 ]);
    test "batched counterexamples reduce model-checking rounds" (fun () ->
        let iterations k =
          let r =
            Mechaml_scenarios.Railcab_remote.run ~lossy:false
              ~property:Mechaml_scenarios.Railcab_remote.constraint_ ()
          in
          ignore r;
          let r =
            Loop.run ~counterexamples_per_iteration:k
              ~label_of:Mechaml_scenarios.Railcab_remote.label_of
              ~context:(Mechaml_scenarios.Railcab_remote.context ~lossy:false)
              ~property:Mechaml_scenarios.Railcab_remote.constraint_
              ~legacy:Mechaml_scenarios.Railcab_remote.box_remote ()
          in
          (match r.Loop.verdict with
          | Loop.Proved -> ()
          | _ -> Alcotest.fail "expected Proved");
          List.length r.Loop.iterations
        in
        check_bool "k=4 needs no more rounds than k=1" true (iterations 4 <= iterations 1));
    test "batching on the lock family verdicts agree" (fun () ->
        let n = 12 and depth = 4 in
        List.iter
          (fun k ->
            let r =
              Loop.run ~counterexamples_per_iteration:k ~label_of:Families.lock_label_of
                ~context:(Families.lock_context ~n ~depth) ~property:Families.lock_property
                ~legacy:(Families.lock_box ~n) ()
            in
            match r.Loop.verdict with
            | Loop.Proved -> ()
            | _ -> Alcotest.fail "expected Proved")
          [ 1; 3 ]);
  ]

let () = Alcotest.run "loop_extensions" [ ("unit", unit_tests) ]
