module Simulation = Mechaml_ts.Simulation
open Helpers

let sim ?label_match c a = Simulation.simulates ?label_match ~concrete:c ~abstract:a ()

let unit_tests =
  [
    test "identical automata simulate" (fun () ->
        let m () =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "b"); ("b", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        check_bool "self-simulation" true (sim (m ()) (m ())));
    test "fewer behaviours simulate more" (fun () ->
        let small =
          automaton ~inputs:[ "x"; "y" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let big =
          automaton ~inputs:[ "x"; "y" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "y" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        check_bool "small ⪯ big" true (sim small big);
        check_bool "big ⪯̸ small" false (sim big small));
    test "labels must match" (fun () ->
        let labelled p =
          automaton ~inputs:[] ~outputs:[] ~states:[ ("s", p) ]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        check_bool "same label" true (sim (labelled [ "p" ]) (labelled [ "p" ]));
        check_bool "different label" false (sim (labelled [ "p" ]) (labelled [ "q" ])));
    test "wildcard label matches anything" (fun () ->
        let concrete =
          automaton ~inputs:[] ~outputs:[] ~states:[ ("s", [ "p" ]) ]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        let chaosish =
          automaton ~inputs:[] ~outputs:[] ~states:[ ("w", [ "p_chaos" ]) ]
            ~trans:[ ("w", [], [], "w") ] ~initial:[ "w" ] ()
        in
        check_bool "exact fails" false (sim concrete chaosish);
        check_bool "wildcard succeeds" true
          (sim ~label_match:(Simulation.Wildcard "p_chaos") concrete chaosish));
    test "branching distinguishes simulation from trace inclusion" (fun () ->
        (* Classic: a·(b+c) vs a·b + a·c — same traces, no simulation. *)
        let committed =
          automaton ~inputs:[ "a"; "b"; "c" ] ~outputs:[]
            ~trans:
              [
                ("s", [ "a" ], [], "t1");
                ("s", [ "a" ], [], "t2");
                ("t1", [ "b" ], [], "u");
                ("t2", [ "c" ], [], "u");
              ]
            ~initial:[ "s" ] ()
        in
        let deferred =
          automaton ~inputs:[ "a"; "b"; "c" ] ~outputs:[]
            ~trans:[ ("s", [ "a" ], [], "t"); ("t", [ "b" ], [], "u"); ("t", [ "c" ], [], "u") ]
            ~initial:[ "s" ] ()
        in
        check_bool "deferred simulates committed... no: committed ⪯ deferred" true
          (sim committed deferred);
        check_bool "deferred ⪯̸ committed" false (sim deferred committed));
    test "different alphabets are rejected" (fun () ->
        let a =
          automaton ~inputs:[ "x" ] ~outputs:[] ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        let b =
          automaton ~inputs:[ "y" ] ~outputs:[] ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        match sim a b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "alphabet order does not matter" (fun () ->
        let a =
          automaton ~inputs:[ "x"; "y" ] ~outputs:[]
            ~trans:[ ("s", [ "x" ], [], "s") ] ~initial:[ "s" ] ()
        in
        let b =
          automaton ~inputs:[ "y"; "x" ] ~outputs:[]
            ~trans:[ ("s", [ "x" ], [], "s") ] ~initial:[ "s" ] ()
        in
        check_bool "simulates across reordered universes" true (sim a b));
  ]

let () = Alcotest.run "simulation" [ ("unit", unit_tests) ]
