module Sat = Mechaml_mc.Sat
module Checker = Mechaml_mc.Checker
module Ctl = Mechaml_logic.Ctl
module Parser = Mechaml_logic.Parser
open Helpers

(* A line: s0 -> s1 -> s2(goal, blocking); plus a side loop at s0. *)
let line () =
  automaton ~inputs:[] ~outputs:[]
    ~states:[ ("s0", [ "start" ]); ("s1", [ "mid" ]); ("s2", [ "goal" ]) ]
    ~trans:[ ("s0", [], [], "s1"); ("s1", [], [], "s2") ]
    ~initial:[ "s0" ] ()

(* A loop alternating p-states with a branch to a blocking state. *)
let loop_with_exit () =
  automaton ~inputs:[] ~outputs:[]
    ~states:[ ("a", [ "p" ]); ("b", [ "p" ]); ("dead", [ "bad" ]) ]
    ~trans:[ ("a", [], [], "b"); ("b", [], [], "a"); ("b", [], [], "dead") ]
    ~initial:[ "a" ] ()

let sat m f =
  let env = Sat.create m in
  Array.to_list (Sat.sat env (Parser.parse_exn f))

let holds m f = Checker.holds m (Parser.parse_exn f)

let unit_tests =
  [
    test "propositions and booleans" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "start" [ true; false; false ] (sat m "start");
        Alcotest.(check (list bool)) "not start" [ false; true; true ] (sat m "not start");
        Alcotest.(check (list bool)) "start or goal" [ true; false; true ] (sat m "start or goal");
        Alcotest.(check (list bool)) "true" [ true; true; true ] (sat m "true");
        Alcotest.(check (list bool)) "start -> goal" [ false; true; true ] (sat m "start -> goal"));
    test "unknown proposition raises" (fun () ->
        match sat (line ()) "nonexistent" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "deadlock proposition" (fun () ->
        Alcotest.(check (list bool)) "only s2 blocks" [ false; false; true ]
          (sat (line ()) "deadlock"));
    test "EX and AX" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "EX mid" [ true; false; false ] (sat m "EX mid");
        Alcotest.(check (list bool)) "AX goal" [ false; true; true ] (sat m "AX goal"));
    test "EF and AG unbounded" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "EF goal" [ true; true; true ] (sat m "E<> goal");
        Alcotest.(check (list bool)) "AG (not mid)" [ false; false; true ]
          (sat m "A[] (not mid)"));
    test "AF over maximal runs" (fun () ->
        let m = loop_with_exit () in
        (* the a<->b loop never reaches 'bad', so AF bad fails everywhere
           except the dead state itself *)
        Alcotest.(check (list bool)) "AF bad" [ false; false; true ] (sat m "AF bad"));
    test "EG over maximal runs includes finite blocked runs" (fun () ->
        let m = loop_with_exit () in
        Alcotest.(check (list bool)) "EG p on the loop" [ true; true; false ] (sat m "EG p");
        (* EG true holds everywhere (every maximal run qualifies) *)
        Alcotest.(check (list bool)) "EG true" [ true; true; true ] (sat m "EG true"));
    test "EU and AU unbounded" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "E(start U mid)" [ true; true; false ]
          (sat m "E (start U mid)");
        Alcotest.(check (list bool)) "A(true U goal)" [ true; true; true ]
          (sat m "A (true U goal)");
        (* from s0, p fails before q on the only path where q=start *)
        Alcotest.(check (list bool)) "A(mid U goal)" [ false; true; true ]
          (sat m "A (mid U goal)"));
    test "bounded EF respects the window" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "EF[2,2] goal" [ true; false; false ]
          (sat m "EF[2,2] goal");
        Alcotest.(check (list bool)) "EF[1,1] goal" [ false; true; false ]
          (sat m "EF[1,1] goal");
        Alcotest.(check (list bool)) "EF[0,0] goal" [ false; false; true ]
          (sat m "EF[0,0] goal");
        Alcotest.(check (list bool)) "EF[3,9] goal (too late)" [ false; false; false ]
          (sat m "EF[3,9] goal"));
    test "bounded AF fails when a run ends before the window" (fun () ->
        let m = line () in
        (* s1 reaches goal in 1 step; the run then blocks, so AF[2,3] goal is
           unsatisfiable from s1. *)
        Alcotest.(check (list bool)) "AF[1,2] goal" [ true; true; false ]
          (sat m "AF[1,2] goal");
        Alcotest.(check (list bool)) "AF[2,3] goal" [ true; false; false ]
          (sat m "AF[2,3] goal"));
    test "bounded AG checks only the window" (fun () ->
        let m = loop_with_exit () in
        Alcotest.(check (list bool)) "AG[0,1] p" [ true; false; false ] (sat m "AG[0,1] p");
        Alcotest.(check (list bool)) "AG[0,0] p" [ true; true; false ] (sat m "AG[0,0] p");
        (* a run that dies before the window satisfies the bounded safety *)
        let line = line () in
        Alcotest.(check (list bool)) "AG[5,9] anything on a short line" [ true; true; true ]
          (sat line "AG[5,9] mid"));
    test "bounded EG and EU" (fun () ->
        let m = loop_with_exit () in
        Alcotest.(check (list bool)) "EG[0,5] p" [ true; true; false ] (sat m "EG[0,5] p");
        Alcotest.(check (list bool)) "E[1,2](p U bad)" [ true; true; false ]
          (sat m "E[1,2] (p U bad)"));
    test "bounded AU" (fun () ->
        let m = line () in
        Alcotest.(check (list bool)) "A[1,2] (true U goal)" [ true; true; false ]
          (sat m "A[1,2] (true U goal)"));
    test "checker verdicts on initial states" (fun () ->
        let m = line () in
        check_bool "EF goal holds initially" true (holds m "E<> goal");
        check_bool "AG not goal fails" false (holds m "A[] (not goal)");
        check_bool "deadlock freedom fails (s2 blocks)" false
          (holds m "A[] (not deadlock)"));
    test "check_conjunction reports the first failing property" (fun () ->
        let m = line () in
        match
          Checker.check_conjunction m
            [ Parser.parse_exn "E<> goal"; Parser.parse_exn "A[] (not mid)" ]
        with
        | Checker.Violated { formula; _ } ->
          check_bool "second formula blamed" true
            (Ctl.equal formula (Parser.parse_exn "A[] (not mid)"))
        | Checker.Holds -> Alcotest.fail "should be violated");
    test "check_with_deadlock_freedom flags deadlock first" (fun () ->
        let m = line () in
        match Checker.check_with_deadlock_freedom m (Parser.parse_exn "true") with
        | Checker.Violated { formula; _ } ->
          check_bool "deadlock-freedom blamed" true (Ctl.equal formula Ctl.deadlock_free)
        | Checker.Holds -> Alcotest.fail "line has a blocking state");
  ]

let () = Alcotest.run "mc" [ ("unit", unit_tests) ]
