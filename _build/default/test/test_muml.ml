module Role = Mechaml_muml.Role
module Pattern = Mechaml_muml.Pattern
module Component = Mechaml_muml.Component
module Rtsc = Mechaml_rtsc.Rtsc
module Automaton = Mechaml_ts.Automaton
module Refinement = Mechaml_ts.Refinement
module Checker = Mechaml_mc.Checker
module Parser = Mechaml_logic.Parser
open Helpers

(* A tiny request/grant pattern: client proposes, server grants. *)
let client_rtsc () =
  let c = Rtsc.create ~name:"client" ~inputs:[ "grant" ] ~outputs:[ "request" ] () in
  Rtsc.add_state c ~initial:true ~idle:true "idle";
  Rtsc.add_state c "waiting";
  Rtsc.add_state c ~idle:true "served";
  Rtsc.add_transition c ~src:"idle" ~effect:[ "request" ] ~dst:"waiting" ();
  Rtsc.add_transition c ~src:"waiting" ~trigger:[ "grant" ] ~dst:"served" ();
  c

let server_rtsc () =
  let c = Rtsc.create ~name:"server" ~inputs:[ "request" ] ~outputs:[ "grant" ] () in
  Rtsc.add_state c ~initial:true ~idle:true "ready";
  Rtsc.add_state c "granting";
  Rtsc.add_transition c ~src:"ready" ~trigger:[ "request" ] ~dst:"granting" ();
  Rtsc.add_transition c ~src:"granting" ~effect:[ "grant" ] ~dst:"ready" ();
  c

let client () = Role.make ~name:"client" ~behavior:(client_rtsc ()) ()

let server () = Role.make ~name:"server" ~behavior:(server_rtsc ()) ()

let pattern () =
  Pattern.make ~name:"RequestGrant"
    ~roles:[ client (); server () ]
    ~constraint_:(Parser.parse_exn "AG (not (client.served and server.granting))")
    ()

let unit_tests =
  [
    test "role automaton is prefixed" (fun () ->
        let m = Role.automaton (client ()) in
        check_bool "client.idle" true
          (Automaton.has_prop m (Automaton.state_index m "idle") "client.idle"));
    test "role invariant checked in isolation" (fun () ->
        let role =
          Role.make ~name:"client" ~behavior:(client_rtsc ())
            ~invariant:(Parser.parse_exn "AG (not (client.idle and client.served))")
            ()
        in
        check_bool "holds" true (Role.check_invariant role = Checker.Holds));
    test "pattern verify holds for the request/grant pattern" (fun () ->
        match Pattern.verify (pattern ()) with
        | Checker.Holds -> ()
        | Checker.Violated { explanation; _ } -> Alcotest.fail explanation);
    test "pattern verify reports violated constraints" (fun () ->
        let bad =
          Pattern.make ~name:"RequestGrant"
            ~roles:[ client (); server () ]
            ~constraint_:(Parser.parse_exn "AG (not client.served)")
            ()
        in
        match Pattern.verify bad with
        | Checker.Violated _ -> ()
        | Checker.Holds -> Alcotest.fail "served is reachable");
    test "composition reaches the served state" (fun () ->
        let m = Pattern.composition (pattern ()) in
        check_bool "EF client.served" true
          (Checker.holds m (Parser.parse_exn "E<> client.served")));
    test "context_for excludes the named role" (fun () ->
        let ctx = Pattern.context_for (pattern ()) ~role:"client" in
        check_bool "has server props" true
          (Mechaml_ts.Universe.mem ctx.Automaton.props "server.ready");
        check_bool "no client props" false
          (Mechaml_ts.Universe.mem ctx.Automaton.props "client.idle"));
    test "context_for unknown role raises" (fun () ->
        match Pattern.context_for (pattern ()) ~role:"nobody" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "component port refining its role conforms" (fun () ->
        (* the role automaton itself is a valid port implementation *)
        let port = Role.automaton (client ()) in
        let comp = Component.make ~name:"ClientImpl" ~ports:[ ("client", port) ] in
        match Component.conforms_to comp ~role:(client ()) with
        | Refinement.Refines -> ()
        | Refinement.Fails _ -> Alcotest.fail "role refines itself");
    test "component adding behaviour does not conform" (fun () ->
        let rogue =
          automaton ~name:"rogue" ~inputs:[ "grant" ] ~outputs:[ "request" ]
            ~states:[ ("idle", [ "client.idle" ]) ]
            ~trans:
              [
                ("idle", [], [ "request" ], "idle");
                (* sends requests forever without ever waiting: trace not in
                   the role *)
              ]
            ~initial:[ "idle" ] ()
        in
        let comp = Component.make ~name:"Rogue" ~ports:[ ("client", rogue) ] in
        match Component.conforms_to comp ~role:(client ()) with
        | Refinement.Fails _ -> ()
        | Refinement.Refines -> Alcotest.fail "rogue must not conform");
    test "conforms_to without the port raises" (fun () ->
        let comp = Component.make ~name:"Empty" ~ports:[] in
        match Component.conforms_to comp ~role:(client ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
  ]

let () = Alcotest.run "muml" [ ("unit", unit_tests) ]
