module Blackbox = Mechaml_legacy.Blackbox
module Monitor = Mechaml_legacy.Monitor
module Replay = Mechaml_legacy.Replay
module Observation = Mechaml_legacy.Observation
module Event = Mechaml_legacy.Event
open Helpers

(* The paper's correct rear-role component, reduced: propose, await reply. *)
let machine () =
  automaton ~name:"shuttle2" ~inputs:[ "rejected"; "start" ] ~outputs:[ "proposal" ]
    ~trans:
      [
        ("noConvoy::default", [], [ "proposal" ], "noConvoy::wait");
        ("noConvoy::wait", [ "rejected" ], [], "noConvoy::default");
        ("noConvoy::wait", [ "start" ], [], "convoy");
        ("convoy", [], [], "convoy");
      ]
    ~initial:[ "noConvoy::default" ] ()

let box () = Blackbox.of_automaton ~port:"rearRole" (machine ())

let unit_tests =
  [
    test "blackbox exposes the structural interface" (fun () ->
        let b = box () in
        Alcotest.(check (list string)) "inputs" [ "rejected"; "start" ] b.Blackbox.input_signals;
        Alcotest.(check (list string)) "outputs" [ "proposal" ] b.Blackbox.output_signals;
        check_string "initial" "noConvoy::default" b.Blackbox.initial_state;
        check_int "bound" 3 b.Blackbox.state_bound);
    test "sessions are independent" (fun () ->
        let b = box () in
        let s1 = b.Blackbox.connect () and s2 = b.Blackbox.connect () in
        ignore (s1.Blackbox.step ~inputs:[]);
        check_string "s1 advanced" "noConvoy::wait" (s1.Blackbox.probe_state ());
        check_string "s2 untouched" "noConvoy::default" (s2.Blackbox.probe_state ()));
    test "step returns outputs and refusals do not advance" (fun () ->
        let b = box () in
        let s = b.Blackbox.connect () in
        (match s.Blackbox.step ~inputs:[] with
        | Some outs -> Alcotest.(check (list string)) "proposal" [ "proposal" ] outs
        | None -> Alcotest.fail "should emit proposal");
        (* in wait, silence is refused *)
        check_bool "refused" true (s.Blackbox.step ~inputs:[] = None);
        check_string "still waiting" "noConvoy::wait" (s.Blackbox.probe_state ());
        check_bool "then accepts start" true (s.Blackbox.step ~inputs:[ "start" ] <> None));
    test "of_automaton rejects non-deterministic machines" (fun () ->
        let nondet =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "x" ], [], "b"); ("b", [], [], "b") ]
            ~initial:[ "a" ] ()
        in
        match Blackbox.of_automaton nondet with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "signals_consistent compares by name" (fun () ->
        let b = box () in
        let u = Mechaml_ts.Universe.of_list in
        check_bool "matches" true
          (Blackbox.signals_consistent b (u [ "start"; "rejected" ]) (u [ "proposal" ]));
        check_bool "mismatch" false
          (Blackbox.signals_consistent b (u [ "start" ]) (u [ "proposal" ])));
    test "minimal monitoring records only messages (Listing 1.2)" (fun () ->
        let outcome =
          Monitor.run ~box:(box ()) ~instrumentation:Monitor.Minimal
            ~inputs:[ []; [ "rejected" ] ]
        in
        check_bool "no state events" true
          (List.for_all
             (function Event.Current_state _ | Event.Timing _ -> false | _ -> true)
             outcome.Monitor.events);
        Alcotest.(check (list string)) "message names" [ "proposal"; "rejected" ]
          (List.map fst (Event.messages outcome.Monitor.events)));
    test "full monitoring adds states and timing (Listing 1.3/1.5)" (fun () ->
        let outcome =
          Monitor.run ~box:(box ()) ~instrumentation:Monitor.Full ~inputs:[ []; [ "rejected" ] ]
        in
        let kinds =
          List.map
            (function
              | Event.Current_state _ -> "state"
              | Event.Message _ -> "msg"
              | Event.Timing _ -> "time")
            outcome.Monitor.events
        in
        Alcotest.(check (list string)) "event order"
          [ "state"; "msg"; "time"; "state"; "msg"; "time" ]
          kinds;
        Alcotest.(check (list string)) "visited states"
          [ "noConvoy::default"; "noConvoy::wait"; "noConvoy::default" ]
          outcome.Monitor.states);
    test "monitoring stops at a refusal" (fun () ->
        let outcome =
          Monitor.run ~box:(box ()) ~instrumentation:Monitor.Full
            ~inputs:[ []; []; [ "start" ] ]
        in
        Alcotest.(check (option (list string))) "blocked on silence" (Some [])
          outcome.Monitor.blocked;
        check_int "one period executed" 1 (List.length outcome.Monitor.outputs));
    test "record captures only executed periods" (fun () ->
        let recording = Replay.record ~box:(box ()) ~inputs:[ []; []; [ "start" ] ] in
        check_int "one period" 1 (List.length recording.Replay.inputs);
        check_bool "blocked noted" true (recording.Replay.blocked <> None));
    test "replay reproduces the recording with full probes" (fun () ->
        let recording = Replay.record ~box:(box ()) ~inputs:[ []; [ "start" ] ] in
        let outcome = Replay.replay ~box:(box ()) recording in
        Alcotest.(check (list string)) "states probed"
          [ "noConvoy::default"; "noConvoy::wait"; "convoy" ]
          outcome.Monitor.states;
        check_bool "timing recorded" true
          (List.exists (function Event.Timing _ -> true | _ -> false) outcome.Monitor.events));
    test "event rendering matches the paper's listing syntax" (fun () ->
        let line =
          Format.asprintf "%a" Event.pp
            (Event.Message { name = "convoyProposal"; port = "rearRole"; direction = Event.Outgoing })
        in
        check_string "exact" "[Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"" line;
        check_string "state" "[CurrentState] name=\"noConvoy\""
          (Format.asprintf "%a" Event.pp (Event.Current_state { name = "noConvoy" }));
        check_string "timing" "[Timing] count=1"
          (Format.asprintf "%a" Event.pp (Event.Timing { count = 1 })));
    test "observation zips states with interactions" (fun () ->
        let o = Observation.observe ~box:(box ()) ~inputs:[ []; [ "start" ] ] in
        check_string "initial" "noConvoy::default" o.Observation.initial_state;
        check_int "2 steps" 2 (Observation.length o);
        let step = List.nth o.Observation.steps 1 in
        check_string "pre" "noConvoy::wait" step.Observation.pre_state;
        check_string "post" "convoy" step.Observation.post_state;
        check_bool "no refusal" true (o.Observation.refused = None));
    test "observation captures the refusal state" (fun () ->
        let o = Observation.observe ~box:(box ()) ~inputs:[ []; [] ] in
        match o.Observation.refused with
        | Some (state, inputs) ->
          check_string "refusing state" "noConvoy::wait" state;
          Alcotest.(check (list string)) "refused inputs" [] inputs
        | None -> Alcotest.fail "wait refuses silence");
  ]

let () = Alcotest.run "legacy" [ ("unit", unit_tests) ]
