module Incomplete = Mechaml_core.Incomplete
module Automaton = Mechaml_ts.Automaton
open Helpers

let fresh () =
  Incomplete.create ~name:"m" ~inputs:[ "x"; "y" ] ~outputs:[ "o" ] ~initial_state:"s0"

let i ~inputs ~outputs = Incomplete.interaction ~inputs ~outputs

let unit_tests =
  [
    test "create is the trivial M_l0 of Section 3" (fun () ->
        let m = fresh () in
        check_int "one state" 1 (Incomplete.num_states m);
        check_int "no transitions" 0 (Incomplete.num_transitions m);
        check_int "no refusals" 0 (Incomplete.num_refusals m);
        check_int "no knowledge" 0 (Incomplete.knowledge m);
        check_bool "not complete" false (Incomplete.complete m);
        check_bool "deterministic" true (Incomplete.deterministic m));
    test "add_transition discovers states in order" (fun () ->
        let m = Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" in
        Alcotest.(check (list string)) "states" [ "s0"; "s1" ] m.Incomplete.states;
        check_int "knowledge" 1 (Incomplete.knowledge m));
    test "add_transition is idempotent" (fun () ->
        let step m = Incomplete.add_transition m ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" in
        let m = step (step (fresh ())) in
        check_int "one transition" 1 (Incomplete.num_transitions m));
    test "interaction normalises signal order" (fun () ->
        let m = Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "y"; "x" ] ~outputs:[]) ~dst:"s1" in
        check_bool "lookup with other order" true
          (Incomplete.known_response m ~state:"s0" ~inputs:[ "x"; "y" ] <> None));
    test "input determinism is enforced" (fun () ->
        let m = Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" in
        match Incomplete.add_transition m ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[ "o" ]) ~dst:"s1" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "conflicting response accepted");
    test "T and T̄ stay consistent (Definition 6)" (fun () ->
        let m = Incomplete.add_refusal (fresh ()) ~state:"s0" ~inputs:[ "x" ] in
        (match Incomplete.add_transition m ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "transition on refused input accepted");
        let m2 = Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" in
        match Incomplete.add_refusal m2 ~state:"s0" ~inputs:[ "x" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "refusal on known input accepted");
    test "unknown signals rejected" (fun () ->
        match Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "zzz" ] ~outputs:[]) ~dst:"s1" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "refuses and known_response" (fun () ->
        let m =
          Incomplete.add_refusal
            (Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[ "o" ]) ~dst:"s1")
            ~state:"s1" ~inputs:[ "y" ]
        in
        check_bool "refuses" true (Incomplete.refuses m ~state:"s1" ~inputs:[ "y" ]);
        check_bool "does not refuse" false (Incomplete.refuses m ~state:"s0" ~inputs:[ "x" ]);
        match Incomplete.known_response m ~state:"s0" ~inputs:[ "x" ] with
        | Some (outs, dst) ->
          Alcotest.(check (list string)) "outputs" [ "o" ] outs;
          check_string "dst" "s1" dst
        | None -> Alcotest.fail "response should be known");
    test "unknown_measure decreases with knowledge" (fun () ->
        let m0 = fresh () in
        let m1 = Incomplete.add_transition m0 ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s1" in
        let m2 = Incomplete.add_refusal m1 ~state:"s1" ~inputs:[ "y" ] in
        let u0 = Incomplete.unknown_measure m0 ~state_bound:4 in
        let u1 = Incomplete.unknown_measure m1 ~state_bound:4 in
        let u2 = Incomplete.unknown_measure m2 ~state_bound:4 in
        check_bool "strictly decreasing" true (u0 > u1 && u1 > u2);
        check_int "initial budget" 16 u0);
    test "complete detects full knowledge" (fun () ->
        (* one state, alphabet {x,y} -> 4 input sets *)
        let m = Incomplete.create ~name:"m" ~inputs:[ "x"; "y" ] ~outputs:[] ~initial_state:"s" in
        let m = Incomplete.add_transition m ~src:"s" (i ~inputs:[] ~outputs:[]) ~dst:"s" in
        let m = Incomplete.add_transition m ~src:"s" (i ~inputs:[ "x" ] ~outputs:[]) ~dst:"s" in
        let m = Incomplete.add_refusal m ~state:"s" ~inputs:[ "y" ] in
        check_bool "not yet" false (Incomplete.complete m);
        let m = Incomplete.add_refusal m ~state:"s" ~inputs:[ "x"; "y" ] in
        check_bool "complete" true (Incomplete.complete m));
    test "learn_observation merges steps and refusal (Definitions 11/12)" (fun () ->
        let obs =
          {
            Mechaml_legacy.Observation.initial_state = "s0";
            steps =
              [
                {
                  Mechaml_legacy.Observation.pre_state = "s0";
                  inputs = [];
                  outputs = [ "o" ];
                  post_state = "s1";
                };
                {
                  Mechaml_legacy.Observation.pre_state = "s1";
                  inputs = [ "x" ];
                  outputs = [];
                  post_state = "s0";
                };
              ];
            refused = Some ("s0", [ "y" ]);
          }
        in
        let m = Incomplete.learn_observation (fresh ()) obs in
        check_int "2 transitions" 2 (Incomplete.num_transitions m);
        check_int "1 refusal" 1 (Incomplete.num_refusals m);
        check_bool "refusal recorded" true (Incomplete.refuses m ~state:"s0" ~inputs:[ "y" ]));
    test "to_automaton preserves structure" (fun () ->
        let m =
          Incomplete.add_transition (fresh ()) ~src:"s0" (i ~inputs:[ "x" ] ~outputs:[ "o" ]) ~dst:"s1"
        in
        let a = Incomplete.to_automaton m in
        check_int "states" 2 (Automaton.num_states a);
        check_int "transitions" 1 (Automaton.num_transitions a);
        check_string "initial name" "s0" (Automaton.state_name a (List.hd a.Automaton.initial)));
    test "pp renders" (fun () ->
        let m = Incomplete.add_refusal (fresh ()) ~state:"s0" ~inputs:[ "x" ] in
        check_bool "nonempty" true (String.length (Format.asprintf "%a" Incomplete.pp m) > 0));
  ]

let () = Alcotest.run "incomplete" [ ("unit", unit_tests) ]
