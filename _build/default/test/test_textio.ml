module Textio = Mechaml_ts.Textio
module Automaton = Mechaml_ts.Automaton
module Refinement = Mechaml_ts.Refinement
open Helpers

let sample =
  {|# a lamp
automaton lamp
inputs press
outputs burnt
initial off
state off props lamp.off
state dead props lamp.dead
trans off : press / -> on
trans on : press / burnt -> dead
trans dead : / -> dead
|}

let unit_tests =
  [
    test "parses the sample" (fun () ->
        let m = Textio.parse_exn sample in
        check_string "name" "lamp" m.Automaton.name;
        check_int "3 states (off, dead, on)" 3 (Automaton.num_states m);
        check_int "3 transitions" 3 (Automaton.num_transitions m);
        check_bool "labels kept" true
          (Automaton.has_prop m (Automaton.state_index m "dead") "lamp.dead");
        Alcotest.(check (list int)) "initial" [ Automaton.state_index m "off" ]
          m.Automaton.initial);
    test "comments and blank lines are ignored" (fun () ->
        let m = Textio.parse_exn "automaton x\n\n# hi\ninputs a\noutputs\ninitial s\ntrans s : a / -> s\n" in
        check_int "1 state" 1 (Automaton.num_states m));
    test "empty outputs directive means no outputs" (fun () ->
        let m = Textio.parse_exn "inputs a\noutputs\ninitial s\ntrans s : a / -> s\n" in
        check_int "no outputs" 0 (Mechaml_ts.Universe.size m.Automaton.outputs));
    test "roundtrip print/parse preserves behaviour and labels" (fun () ->
        let original = Mechaml_scenarios.Railcab.legacy_correct in
        let reparsed = Textio.parse_exn (Textio.print original) in
        check_bool "refines both ways" true
          (Refinement.refines ~concrete:original ~abstract:reparsed ()
          && Refinement.refines ~concrete:reparsed ~abstract:original ()));
    test "roundtrip keeps propositions" (fun () ->
        let m =
          automaton ~inputs:[ "i" ] ~outputs:[ "o" ]
            ~states:[ ("s", [ "x.p"; "x.q" ]) ]
            ~trans:[ ("s", [ "i" ], [ "o" ], "s") ]
            ~initial:[ "s" ] ()
        in
        let m' = Textio.parse_exn (Textio.print m) in
        check_bool "p" true (Automaton.has_prop m' 0 "x.p");
        check_bool "q" true (Automaton.has_prop m' 0 "x.q"));
    test "errors carry line numbers" (fun () ->
        let bad = "inputs a\noutputs\ninitial s\ntrans s a / -> s\n" in
        match Textio.parse bad with
        | Error { line; _ } -> check_int "line 4" 4 line
        | Ok _ -> Alcotest.fail "missing ':' accepted");
    test "unknown directives are rejected" (fun () ->
        match Textio.parse "frobnicate x\n" with
        | Error { line; _ } -> check_int "line 1" 1 line
        | Ok _ -> Alcotest.fail "accepted");
    test "missing mandatory directives are rejected" (fun () ->
        (match Textio.parse "inputs a\noutputs b\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "no initial accepted");
        match Textio.parse "initial s\noutputs b\ntrans s : / -> s\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "no inputs accepted");
    test "unknown signals in trans are rejected" (fun () ->
        match Textio.parse "inputs a\noutputs\ninitial s\ntrans s : zzz / -> s\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted");
    test "load uses the file name as default automaton name" (fun () ->
        let path = Filename.temp_file "widget" ".aut" in
        let oc = open_out path in
        output_string oc "inputs a\noutputs\ninitial s\ntrans s : a / -> s\n";
        close_out oc;
        (match Textio.load ~path with
        | Ok m ->
          check_bool "name from file" true
            (String.length m.Automaton.name > 0 && m.Automaton.name <> "automaton")
        | Error _ -> Alcotest.fail "should load");
        Sys.remove path);
    test "save/load roundtrip" (fun () ->
        let path = Filename.temp_file "mechaml" ".aut" in
        Textio.save ~path Mechaml_scenarios.Protocol.sender_correct;
        (match Textio.load ~path with
        | Ok m -> check_int "4 states" 4 (Automaton.num_states m)
        | Error _ -> Alcotest.fail "should load");
        Sys.remove path);
  ]

let () = Alcotest.run "textio" [ ("unit", unit_tests) ]
