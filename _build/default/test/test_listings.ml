(* Golden tests for the paper's listings: the monitored event logs and
   counterexample renderings must keep their exact shape (modulo the
   documented naming conventions, see EXPERIMENTS.md). *)

module Railcab = Mechaml_scenarios.Railcab
module Listing = Mechaml_scenarios.Listing
module Monitor = Mechaml_legacy.Monitor
module Replay = Mechaml_legacy.Replay
module Event = Mechaml_legacy.Event
module Loop = Mechaml_core.Loop
open Helpers

let unit_tests =
  [
    test "Listing 1.2: minimal recording of the conflicting shuttle" (fun () ->
        let recording =
          Replay.record ~box:Railcab.box_conflicting
            ~inputs:[ []; [ "convoyProposalRejected" ] ]
        in
        check_string "golden"
          "[Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"\n\
           [Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\""
          (Event.to_string recording.Replay.minimal_events));
    test "Listing 1.3: replay with full instrumentation exposes the convoy state" (fun () ->
        let recording =
          Replay.record ~box:Railcab.box_conflicting
            ~inputs:[ []; [ "convoyProposalRejected" ] ]
        in
        let outcome = Replay.replay ~box:Railcab.box_conflicting recording in
        check_string "golden"
          "[CurrentState] name=\"noConvoy\"\n\
           [Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"\n\
           [Timing] count=1\n\
           [CurrentState] name=\"convoy\"\n\
           [Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\"\n\
           [Timing] count=2"
          (Event.to_string outcome.Monitor.events));
    test "Listing 1.5: successful learning step on the correct shuttle" (fun () ->
        let outcome =
          Monitor.run ~box:Railcab.box_correct ~instrumentation:Monitor.Full
            ~inputs:[ []; [ "convoyProposalRejected" ]; []; [ "startConvoy" ] ]
        in
        check_string "golden"
          "[CurrentState] name=\"noConvoy::default\"\n\
           [Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"\n\
           [Timing] count=1\n\
           [CurrentState] name=\"noConvoy::wait\"\n\
           [Message] name=\"convoyProposalRejected\", portName=\"rearRole\", type=\"incoming\"\n\
           [Timing] count=2\n\
           [CurrentState] name=\"noConvoy::default\"\n\
           [Message] name=\"convoyProposal\", portName=\"rearRole\", type=\"outgoing\"\n\
           [Timing] count=3\n\
           [CurrentState] name=\"noConvoy::wait\"\n\
           [Message] name=\"startConvoy\", portName=\"rearRole\", type=\"incoming\"\n\
           [Timing] count=4"
          (Event.to_string outcome.Monitor.events));
    test "Listing 1.4: the fast conflict counterexample rendering" (fun () ->
        let r = Railcab.run_conflicting () in
        match r.Loop.verdict with
        | Loop.Real_violation { witness; product; _ } ->
          check_string "golden"
            "shuttle1.noConvoy::default, shuttle2.noConvoy\n\
             shuttle2.convoyProposal!, shuttle1.convoyProposal?\n\
             shuttle1.noConvoy::answer, shuttle2.convoy\n"
            (Listing.render ~left_name:"shuttle1" ~right_name:"shuttle2" product witness)
        | _ -> Alcotest.fail "expected the real violation");
    test "Listing 1.1 shape: the DFS counterexample visits chaos and deadlocks" (fun () ->
        let m0 = Mechaml_core.Synthesis.initial_model Railcab.box_correct in
        let a0 =
          Mechaml_core.Chaos.closure ~label_of:Railcab.label_of
            ~extra_props:[ "rearRole.convoy"; "rearRole.noConvoy" ]
            m0
        in
        let product = Mechaml_ts.Compose.parallel Railcab.context a0 in
        let weakened =
          Mechaml_logic.Ctl.weaken_for_chaos ~chaos_prop:Mechaml_core.Chaos.chaos_prop
            Railcab.constraint_
        in
        match
          Mechaml_mc.Checker.check_conjunction ~strategy:Mechaml_mc.Witness.Dfs_first
            product.Mechaml_ts.Compose.auto
            [ weakened; Mechaml_logic.Ctl.deadlock_free ]
        with
        | Mechaml_mc.Checker.Violated { witness; _ } ->
          let rendered =
            Listing.render ~left_name:"shuttle1" ~right_name:"shuttle2" product witness
          in
          let contains needle =
            let h = String.length rendered and n = String.length needle in
            let rec go i = i + n <= h && (String.sub rendered i n = needle || go (i + 1)) in
            go 0
          in
          check_bool "visits s_all" true (contains "shuttle2.s_all");
          check_bool "ends in s_delta" true (contains "shuttle2.s_delta");
          check_bool "opens with the proposal handshake" true
            (contains "shuttle2.convoyProposal!, shuttle1.convoyProposal?")
        | Mechaml_mc.Checker.Holds -> Alcotest.fail "iteration 0 cannot hold");
  ]

let () = Alcotest.run "listings" [ ("unit", unit_tests) ]
