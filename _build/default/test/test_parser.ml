module Ctl = Mechaml_logic.Ctl
module Parser = Mechaml_logic.Parser
open Helpers

let parses s expected =
  test ("parses: " ^ s) (fun () ->
      match Parser.parse s with
      | Ok f -> check_bool "expected AST" true (Ctl.equal f expected)
      | Error e -> Alcotest.fail (Printf.sprintf "error at %d: %s" e.position e.message))

let rejects s =
  test ("rejects: " ^ s) (fun () ->
      match Parser.parse s with
      | Ok f -> Alcotest.fail ("unexpectedly parsed as " ^ Ctl.to_string f)
      | Error _ -> ())

let p = Ctl.Prop "p"

let q = Ctl.Prop "q"

let unit_tests =
  [
    parses "true" Ctl.True;
    parses "false" Ctl.False;
    parses "deadlock" Ctl.Deadlock;
    parses "delta" Ctl.Deadlock;
    parses "p" p;
    parses "frontRole.noConvoy" (Ctl.Prop "frontRole.noConvoy");
    parses "noConvoy::default" (Ctl.Prop "noConvoy::default");
    parses "not p" (Ctl.Not p);
    parses "!p" (Ctl.Not p);
    parses "p and q" (Ctl.And (p, q));
    parses "p && q" (Ctl.And (p, q));
    parses "p or q" (Ctl.Or (p, q));
    parses "p || q" (Ctl.Or (p, q));
    parses "p -> q" (Ctl.Implies (p, q));
    parses "p => q" (Ctl.Implies (p, q));
    parses "p -> q -> p" (Ctl.Implies (p, Ctl.Implies (q, p)));
    parses "p and q or p" (Ctl.Or (Ctl.And (p, q), p));
    parses "p or q and p" (Ctl.Or (p, Ctl.And (q, p)));
    parses "AG p" (Ctl.ag p);
    parses "A[] p" (Ctl.ag p);
    parses "A<> p" (Ctl.af p);
    parses "E[] p" (Ctl.Eg (None, p));
    parses "E<> p" (Ctl.Ef (None, p));
    parses "AX p" (Ctl.Ax p);
    parses "EX p" (Ctl.Ex p);
    parses "AF[1,5] p" (Ctl.Af (Some (Ctl.bounds 1 5), p));
    parses "EG[0,3] p" (Ctl.Eg (Some (Ctl.bounds 0 3), p));
    parses "A (p U q)" (Ctl.Au (None, p, q));
    parses "E (p U q)" (Ctl.Eu (None, p, q));
    parses "A[2,7] (p U q)" (Ctl.Au (Some (Ctl.bounds 2 7), p, q));
    parses "AG (not (rearRole.convoy and frontRole.noConvoy))"
      (Ctl.ag (Ctl.Not (Ctl.And (Ctl.Prop "rearRole.convoy", Ctl.Prop "frontRole.noConvoy"))));
    parses "AG (p -> AF[1,4] q)"
      (Ctl.ag (Ctl.Implies (p, Ctl.Af (Some (Ctl.bounds 1 4), q))));
    parses "not not p" (Ctl.Not (Ctl.Not p));
    parses "AG AF p" (Ctl.ag (Ctl.af p));
    parses "((p))" p;
    rejects "";
    rejects "p and";
    rejects "(p";
    rejects "p q";
    rejects "AF[5,1] p";
    rejects "AF[1 5] p";
    rejects "A p U q";
    rejects "AX[1,2] p";
    rejects "p # q";
    test "error positions are reported" (fun () ->
        match Parser.parse "p and (q" with
        | Error e -> check_bool "has message" true (String.length e.message > 0)
        | Ok _ -> Alcotest.fail "should fail");
    test "parse_exn raises with location" (fun () ->
        match Parser.parse_exn "and" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
  ]

let () = Alcotest.run "parser" [ ("unit", unit_tests) ]
