module Ctl = Mechaml_logic.Ctl
open Helpers

let p = Ctl.Prop "p"

let q = Ctl.Prop "q"

let unit_tests =
  [
    test "bounds validation" (fun () ->
        ignore (Ctl.bounds 0 0);
        ignore (Ctl.bounds 1 5);
        (match Ctl.bounds 3 2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "hi < lo");
        match Ctl.bounds (-1) 2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "negative lo");
    test "props collects and sorts" (fun () ->
        Alcotest.(check (list string)) "props" [ "a"; "b" ]
          (Ctl.props (Ctl.And (Ctl.Prop "b", Ctl.Or (Ctl.Prop "a", Ctl.Prop "b")))));
    test "nnf pushes negation through" (fun () ->
        check_bool "¬AG p → EF ¬p" true
          (Ctl.equal (Ctl.nnf (Ctl.Not (Ctl.ag p))) (Ctl.Ef (None, Ctl.Not p)));
        check_bool "¬(p ∧ q) → ¬p ∨ ¬q" true
          (Ctl.equal (Ctl.nnf (Ctl.Not (Ctl.And (p, q)))) (Ctl.Or (Ctl.Not p, Ctl.Not q)));
        check_bool "¬¬p → p" true (Ctl.equal (Ctl.nnf (Ctl.Not (Ctl.Not p))) p);
        check_bool "implication eliminated" true
          (Ctl.equal (Ctl.nnf (Ctl.Implies (p, q))) (Ctl.Or (Ctl.Not p, q))));
    test "nnf preserves bounds under duality" (fun () ->
        let b = Some (Ctl.bounds 1 4) in
        check_bool "¬AF[1,4] p → EG[1,4] ¬p" true
          (Ctl.equal (Ctl.nnf (Ctl.Not (Ctl.Af (b, p)))) (Ctl.Eg (b, Ctl.Not p))));
    test "is_actl accepts the universal fragment" (fun () ->
        check_bool "AG" true (Ctl.is_actl (Ctl.ag p));
        check_bool "AG(¬(p∧q))" true (Ctl.is_actl (Ctl.ag (Ctl.Not (Ctl.And (p, q)))));
        check_bool "bounded AF" true (Ctl.is_actl (Ctl.Af (Some (Ctl.bounds 1 3), p)));
        check_bool "AU" true (Ctl.is_actl (Ctl.Au (None, p, q)));
        check_bool "max_delay pattern" true
          (Ctl.is_actl (Ctl.max_delay ~trigger:"p" ~target:"q" 5)));
    test "is_actl rejects existential operators" (fun () ->
        check_bool "EF" false (Ctl.is_actl (Ctl.Ef (None, p)));
        check_bool "¬AG (hidden EF)" false (Ctl.is_actl (Ctl.Not (Ctl.ag p)));
        check_bool "EX" false (Ctl.is_actl (Ctl.Ex p)));
    test "is_compositional requires negative deadlock polarity" (fun () ->
        check_bool "AG ¬δ ok" true (Ctl.is_compositional Ctl.deadlock_free);
        check_bool "AG δ not ok" false (Ctl.is_compositional (Ctl.ag Ctl.Deadlock));
        check_bool "plain ACTL ok" true (Ctl.is_compositional (Ctl.ag (Ctl.Not p))));
    test "weaken_for_chaos rewrites literals" (fun () ->
        let w = Ctl.weaken_for_chaos ~chaos_prop:"c" (Ctl.ag (Ctl.Not (Ctl.And (p, q)))) in
        (* NNF first: AG(¬p ∨ ¬q); then each literal gains ∨ c. *)
        let expected =
          Ctl.Ag
            ( None,
              Ctl.Or
                ( Ctl.Or (Ctl.Not p, Ctl.Prop "c"),
                  Ctl.Or (Ctl.Not q, Ctl.Prop "c") ) )
        in
        check_bool "weakened" true (Ctl.equal w expected));
    test "weaken_for_chaos leaves deadlock alone" (fun () ->
        let w = Ctl.weaken_for_chaos ~chaos_prop:"c" Ctl.deadlock_free in
        check_bool "unchanged" true (Ctl.equal w Ctl.deadlock_free));
    test "size counts nodes" (fun () ->
        check_int "atom" 1 (Ctl.size p);
        check_int "AG(p∧q)" 4 (Ctl.size (Ctl.ag (Ctl.And (p, q)))));
    test "max_delay builds the canonical CCTL formula" (fun () ->
        match Ctl.max_delay ~trigger:"t" ~target:"g" 7 with
        | Ctl.Ag (None, Ctl.Or (Ctl.Not (Ctl.Prop "t"), Ctl.Af (Some b, Ctl.Prop "g"))) ->
          check_int "lo" 1 b.Ctl.lo;
          check_int "hi" 7 b.Ctl.hi
        | _ -> Alcotest.fail "unexpected shape");
    test "pp/parse roundtrip on printable formulas" (fun () ->
        let formulas =
          [
            Ctl.ag (Ctl.Not (Ctl.And (p, q)));
            Ctl.Af (Some (Ctl.bounds 1 5), p);
            Ctl.Au (None, p, q);
            Ctl.Implies (p, Ctl.Ex q);
            Ctl.deadlock_free;
          ]
        in
        List.iter
          (fun f ->
            let printed = Ctl.to_string f in
            match Mechaml_logic.Parser.parse printed with
            | Ok f' -> check_bool ("roundtrip " ^ printed) true (Ctl.equal f f')
            | Error e ->
              Alcotest.fail (Printf.sprintf "parse of %S failed: %s" printed e.message))
          formulas);
  ]

let () = Alcotest.run "ctl" [ ("unit", unit_tests) ]
