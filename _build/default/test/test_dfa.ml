module Dfa = Mechaml_learnlib.Dfa
module Dfa_lstar = Mechaml_learnlib.Dfa_lstar
open Helpers

let ab = [ "a"; "b" ]

(* L = words with an even number of 'a'. *)
let even_a =
  Dfa.create ~alphabet:ab
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
    ~accepting:[| true; false |]
    ()

(* L = words ending in "ab". *)
let ends_ab =
  Dfa.create ~alphabet:ab
    ~delta:[| [| 1; 0 |]; [| 1; 2 |]; [| 1; 0 |] |]
    ~accepting:[| false; false; true |]
    ()

let unit_tests =
  [
    test "accepts follows transitions" (fun () ->
        check_bool "ε even" true (Dfa.accepts_word even_a []);
        check_bool "a odd" false (Dfa.accepts_word even_a [ "a" ]);
        check_bool "aba even" true (Dfa.accepts_word even_a [ "a"; "b"; "a" ]);
        check_bool "ends ab" true (Dfa.accepts_word ends_ab [ "b"; "a"; "b" ]);
        check_bool "ends ba" false (Dfa.accepts_word ends_ab [ "a"; "b"; "a" ]));
    test "create validates shape" (fun () ->
        (match Dfa.create ~alphabet:ab ~delta:[| [| 0 |] |] ~accepting:[| true |] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "row too short");
        match Dfa.create ~alphabet:ab ~delta:[| [| 0; 9 |] |] ~accepting:[| true |] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "target out of range");
    test "equivalent detects equal and distinct languages" (fun () ->
        check_bool "self" true (Dfa.equivalent even_a even_a = None);
        (match Dfa.equivalent even_a ends_ab with
        | Some w ->
          check_bool "word distinguishes" true
            (Dfa.accepts even_a w <> Dfa.accepts ends_ab w)
        | None -> Alcotest.fail "languages differ"));
    test "complement flips membership" (fun () ->
        let c = Dfa.complement even_a in
        check_bool "ε" false (Dfa.accepts_word c []);
        check_bool "a" true (Dfa.accepts_word c [ "a" ]);
        check_bool "not equivalent to original" true (Dfa.equivalent even_a c <> None));
    test "minimize collapses redundant states" (fun () ->
        (* duplicate the even_a automaton's states *)
        let bloated =
          Dfa.create ~alphabet:ab
            ~delta:[| [| 1; 2 |]; [| 0; 3 |]; [| 3; 0 |]; [| 2; 1 |] |]
            ~accepting:[| true; false; true; false |]
            ()
        in
        let m = Dfa.minimize bloated in
        check_int "2 states" 2 (Dfa.num_states m);
        check_bool "same language" true (Dfa.equivalent m bloated = None));
    test "minimize drops unreachable states" (fun () ->
        let with_orphan =
          Dfa.create ~alphabet:ab
            ~delta:[| [| 0; 0 |]; [| 1; 1 |] |]
            ~accepting:[| true; false |]
            ()
        in
        check_int "1 state" 1 (Dfa.num_states (Dfa.minimize with_orphan)));
    test "minimize is idempotent on random DFAs" (fun () ->
        List.iter
          (fun seed ->
            let d = Dfa.random ~seed ~states:8 ~alphabet:ab in
            let m = Dfa.minimize d in
            check_bool "language preserved" true (Dfa.equivalent d m = None);
            check_int "idempotent" (Dfa.num_states m) (Dfa.num_states (Dfa.minimize m)))
          [ 1; 2; 3; 4; 5 ]);
    test "L* learns the even-a language" (fun () ->
        let teacher, stats = Dfa_lstar.teacher_of_dfa even_a in
        let r = Dfa_lstar.learn ~alphabet:ab ~teacher () in
        check_bool "equivalent" true (Dfa.equivalent even_a r.Dfa_lstar.hypothesis = None);
        check_int "minimal" 2 (Dfa.num_states r.Dfa_lstar.hypothesis);
        let s = stats () in
        check_bool "used membership queries" true (s.Dfa_lstar.membership_queries > 0));
    test "L* learns ends-ab" (fun () ->
        let teacher, _ = Dfa_lstar.teacher_of_dfa ends_ab in
        let r = Dfa_lstar.learn ~alphabet:ab ~teacher () in
        check_bool "equivalent" true (Dfa.equivalent ends_ab r.Dfa_lstar.hypothesis = None);
        check_int "minimal (3 states)" 3 (Dfa.num_states r.Dfa_lstar.hypothesis));
    test "L* learns random DFAs exactly and minimally" (fun () ->
        List.iter
          (fun seed ->
            let target = Dfa.random ~seed ~states:6 ~alphabet:ab in
            let minimal = Dfa.minimize target in
            let teacher, stats = Dfa_lstar.teacher_of_dfa target in
            let r = Dfa_lstar.learn ~alphabet:ab ~teacher () in
            check_bool
              (Printf.sprintf "seed %d equivalent" seed)
              true
              (Dfa.equivalent target r.Dfa_lstar.hypothesis = None);
            check_int
              (Printf.sprintf "seed %d minimal" seed)
              (Dfa.num_states minimal)
              (Dfa.num_states r.Dfa_lstar.hypothesis);
            (* the classical bound: at most n equivalence queries *)
            let s = stats () in
            check_bool "≤ n equivalence queries" true
              (s.Dfa_lstar.equivalence_queries <= Dfa.num_states minimal + 1))
          (List.init 10 (fun i -> i + 1)));
    test "membership query growth is polynomial-ish" (fun () ->
        let queries states seed =
          let target = Dfa.minimize (Dfa.random ~seed ~states ~alphabet:ab) in
          let teacher, stats = Dfa_lstar.teacher_of_dfa target in
          ignore (Dfa_lstar.learn ~alphabet:ab ~teacher ());
          ((stats ()).Dfa_lstar.membership_queries, Dfa.num_states target)
        in
        (* sanity: more states cannot make learning free *)
        let q1, n1 = queries 4 42 and q2, n2 = queries 16 42 in
        if n2 > n1 then check_bool "queries grew" true (q2 >= q1));
  ]

let () = Alcotest.run "dfa" [ ("unit", unit_tests) ]
