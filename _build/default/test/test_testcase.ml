module Testcase = Mechaml_testing.Testcase
module Blackbox = Mechaml_legacy.Blackbox
module Run = Mechaml_ts.Run
module Universe = Mechaml_ts.Universe
open Helpers

(* Correct rear-role fragment as the device under test. *)
let machine = Mechaml_scenarios.Railcab.legacy_correct

let box () = Blackbox.of_automaton machine

let tc ~inputs ~expected =
  { Testcase.name = "t"; inputs; expected_outputs = expected }

let unit_tests =
  [
    test "of_projected_run decodes signal names" (fun () ->
        let io k =
          ( Universe.set_of_names machine.Mechaml_ts.Automaton.inputs k,
            Universe.set_of_names machine.Mechaml_ts.Automaton.outputs [ "convoyProposal" ] )
        in
        let run = Run.regular ~states:[ 0; 1 ] ~io:[ io [] ] in
        let t = Testcase.of_projected_run machine run in
        Alcotest.(check (list (list string))) "inputs" [ [] ] t.Testcase.inputs;
        Alcotest.(check (list (list string))) "expected" [ [ "convoyProposal" ] ]
          t.Testcase.expected_outputs);
    test "reproduced run" (fun () ->
        let t = tc ~inputs:[ []; [ "startConvoy" ] ] ~expected:[ [ "convoyProposal" ]; [] ] in
        let v = Testcase.execute ~box:(box ()) t in
        check_bool "reproduced" true (v.Testcase.classification = Testcase.Reproduced));
    test "divergence reports the period and both outputs" (fun () ->
        let t = tc ~inputs:[ [] ] ~expected:[ [ "breakConvoyProposal" ] ] in
        let v = Testcase.execute ~box:(box ()) t in
        match v.Testcase.classification with
        | Testcase.Diverged { period; expected; observed } ->
          check_int "period 1" 1 period;
          Alcotest.(check (list string)) "expected" [ "breakConvoyProposal" ] expected;
          Alcotest.(check (list string)) "observed" [ "convoyProposal" ] observed
        | _ -> Alcotest.fail "expected divergence");
    test "blocked run reports the refused period" (fun () ->
        (* wait refuses silence in period 2 *)
        let t = tc ~inputs:[ []; [] ] ~expected:[ [ "convoyProposal" ]; [] ] in
        let v = Testcase.execute ~box:(box ()) t in
        match v.Testcase.classification with
        | Testcase.Blocked { period; refused } ->
          check_int "period 2" 2 period;
          Alcotest.(check (list string)) "refused silence" [] refused
        | _ -> Alcotest.fail "expected blocked");
    test "observation is returned alongside the verdict" (fun () ->
        let t = tc ~inputs:[ [] ] ~expected:[ [ "convoyProposal" ] ] in
        let v = Testcase.execute ~box:(box ()) t in
        check_int "one step observed" 1
          (Mechaml_legacy.Observation.length v.Testcase.observation));
    test "expected output order does not matter" (fun () ->
        (* single-output here, but the comparison is on sorted sets *)
        let t = tc ~inputs:[ [] ] ~expected:[ [ "convoyProposal" ] ] in
        let v = Testcase.execute ~box:(box ()) t in
        check_bool "reproduced" true (v.Testcase.classification = Testcase.Reproduced));
    test "pp renders" (fun () ->
        let t = tc ~inputs:[ [] ] ~expected:[ [ "convoyProposal" ] ] in
        check_bool "nonempty" true (String.length (Format.asprintf "%a" Testcase.pp t) > 0);
        let v = Testcase.execute ~box:(box ()) t in
        check_bool "classification renders" true
          (String.length
             (Format.asprintf "%a" Testcase.pp_classification v.Testcase.classification)
          > 0));
  ]

let () = Alcotest.run "testcase" [ ("unit", unit_tests) ]
