module Shrink = Mechaml_testing.Shrink
module Testcase = Mechaml_testing.Testcase
module Observation = Mechaml_legacy.Observation
module Railcab = Mechaml_scenarios.Railcab
open Helpers

(* A padded test: reject the proposal twice, then accept — only the last
   exchange matters for reaching the convoy. *)
let padded =
  {
    Testcase.name = "padded";
    inputs =
      [
        [];
        [ "convoyProposalRejected" ];
        [];
        [ "convoyProposalRejected" ];
        [];
        [ "startConvoy" ];
      ];
    expected_outputs =
      [ [ "convoyProposal" ]; []; [ "convoyProposal" ]; []; [ "convoyProposal" ]; [] ];
  }

let reaches_convoy (v : Testcase.verdict) =
  match List.rev v.Testcase.observation.Observation.steps with
  | last :: _ -> last.Observation.post_state = "convoy::default"
  | [] -> false

let unit_tests =
  [
    test "shrinks the padding away" (fun () ->
        let r = Shrink.minimize ~box:Railcab.box_correct ~keep:reaches_convoy padded in
        check_int "two periods suffice" 2 (List.length r.Shrink.testcase.Testcase.inputs);
        check_int "four removed" 4 r.Shrink.removed;
        check_bool "executions counted" true (r.Shrink.executions > 1));
    test "the minimized test still satisfies the predicate" (fun () ->
        let r = Shrink.minimize ~box:Railcab.box_correct ~keep:reaches_convoy padded in
        let v = Testcase.execute ~box:Railcab.box_correct r.Shrink.testcase in
        check_bool "still reaches convoy" true (reaches_convoy v));
    test "result is 1-minimal" (fun () ->
        let r = Shrink.minimize ~box:Railcab.box_correct ~keep:reaches_convoy padded in
        let t = r.Shrink.testcase in
        let n = List.length t.Testcase.inputs in
        for i = 0 to n - 1 do
          let drop l = List.filteri (fun j _ -> j <> i) l in
          let candidate =
            {
              t with
              Testcase.inputs = drop t.Testcase.inputs;
              expected_outputs = drop t.Testcase.expected_outputs;
            }
          in
          check_bool
            (Printf.sprintf "dropping period %d breaks it" i)
            false
            (reaches_convoy (Testcase.execute ~box:Railcab.box_correct candidate))
        done);
    test "an already-minimal test is untouched" (fun () ->
        let minimal =
          {
            Testcase.name = "minimal";
            inputs = [ []; [ "startConvoy" ] ];
            expected_outputs = [ [ "convoyProposal" ]; [] ];
          }
        in
        let r = Shrink.minimize ~box:Railcab.box_correct ~keep:reaches_convoy minimal in
        check_int "nothing removed" 0 r.Shrink.removed);
    test "predicate must hold initially" (fun () ->
        match Shrink.minimize ~box:Railcab.box_correct ~keep:(fun _ -> false) padded with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "shrinking a blocked-outcome trace" (fun () ->
        (* keep = the run still ends blocked on silence in the wait state *)
        let blocked (v : Testcase.verdict) =
          match v.Testcase.observation.Observation.refused with
          | Some ("noConvoy::wait", []) -> true
          | _ -> false
        in
        let long =
          {
            Testcase.name = "blocked";
            inputs = [ []; [ "convoyProposalRejected" ]; []; [] ];
            expected_outputs = [ [ "convoyProposal" ]; []; [ "convoyProposal" ]; [] ];
          }
        in
        let r = Shrink.minimize ~box:Railcab.box_correct ~keep:blocked long in
        check_int "two periods suffice (send, then blocked silence)" 2
          (List.length r.Shrink.testcase.Testcase.inputs));
  ]

let () = Alcotest.run "shrink" [ ("unit", unit_tests) ]
