module Multi = Mechaml_core.Multi
module Loop = Mechaml_core.Loop
module Incomplete = Mechaml_core.Incomplete
module Conformance = Mechaml_core.Conformance
module Blackbox = Mechaml_legacy.Blackbox
module Automaton = Mechaml_ts.Automaton
open Helpers

(* Two tiny independent components: a toggle and an echo. *)
let toggle =
  automaton ~name:"toggle" ~inputs:[ "flip" ] ~outputs:[ "lit" ]
    ~trans:
      [
        ("off", [ "flip" ], [ "lit" ], "on");
        ("off", [], [], "off");
        ("on", [ "flip" ], [], "off");
        ("on", [], [], "on");
      ]
    ~initial:[ "off" ] ()

let echo =
  automaton ~name:"echo" ~inputs:[ "ping" ] ~outputs:[ "pong" ]
    ~trans:[ ("e", [ "ping" ], [ "pong" ], "e"); ("e", [], [], "e") ]
    ~initial:[ "e" ] ()

let box_toggle () = Blackbox.of_automaton toggle

let box_echo () = Blackbox.of_automaton echo

let combined () = Multi.combine [ box_toggle (); box_echo () ]

let unit_tests =
  [
    test "combine concatenates interfaces" (fun () ->
        let c = combined () in
        Alcotest.(check (list string)) "inputs" [ "flip"; "ping" ] c.Blackbox.input_signals;
        Alcotest.(check (list string)) "outputs" [ "lit"; "pong" ] c.Blackbox.output_signals;
        check_string "initial" "off&e" c.Blackbox.initial_state;
        check_int "bound is the product" 2 c.Blackbox.state_bound);
    test "combine rejects overlapping signals and single components" (fun () ->
        (match Multi.combine [ box_toggle (); box_toggle () ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "shared signals");
        match Multi.combine [ box_toggle () ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "single component");
    test "joint steps split inputs and join outputs" (fun () ->
        let s = (combined ()).Blackbox.connect () in
        (match s.Blackbox.step ~inputs:[ "flip"; "ping" ] with
        | Some outs -> Alcotest.(check (list string)) "both answered" [ "lit"; "pong" ] outs
        | None -> Alcotest.fail "both accept");
        check_string "joint state" "on&e" (s.Blackbox.probe_state ()));
    test "a refusal by one component refuses the joint step without advancing" (fun () ->
        (* make the echo refuse: silence is accepted by both, so use a
           component that refuses silence *)
        let strict =
          automaton ~name:"strict" ~inputs:[ "go" ] ~outputs:[ "done" ]
            ~trans:[ ("s", [ "go" ], [ "done" ], "t"); ("t", [], [], "t") ]
            ~initial:[ "s" ] ()
        in
        let c = Multi.combine [ box_toggle (); Blackbox.of_automaton strict ] in
        let s = c.Blackbox.connect () in
        (* toggle accepts flip, strict refuses silence: joint step refused *)
        check_bool "joint refusal" true (s.Blackbox.step ~inputs:[ "flip" ] = None);
        (* neither component advanced: a subsequent valid joint step sees the
           original states *)
        check_string "state unchanged" "off&s" (s.Blackbox.probe_state ());
        (match s.Blackbox.step ~inputs:[ "flip"; "go" ] with
        | Some outs -> Alcotest.(check (list string)) "now both move" [ "lit"; "done" ] outs
        | None -> Alcotest.fail "should advance");
        check_string "both advanced" "on&t" (s.Blackbox.probe_state ()));
    test "joint_labels splits on the separator" (fun () ->
        let f = Multi.joint_labels [ (fun s -> [ "a." ^ s ]); (fun s -> [ "b." ^ s ]) ] in
        Alcotest.(check (list string)) "labels" [ "a.x"; "b.y" ] (f "x&y");
        Alcotest.(check (list string)) "arity mismatch" [] (f "x"));
    test "multi loop proves the alternating driver and splits the models" (fun () ->
        let driver =
          automaton ~name:"driver" ~inputs:[ "lit"; "pong" ] ~outputs:[ "flip"; "ping" ]
            ~trans:
              [
                ("d0", [ "lit" ], [ "flip" ], "d1");
                ("d1", [ "pong" ], [ "ping" ], "d2");
                ("d2", [], [ "flip" ], "d0");
              ]
            ~initial:[ "d0" ] ()
        in
        let r =
          Multi.run ~context:driver ~property:Mechaml_logic.Ctl.True
            ~legacies:[ box_toggle (); box_echo () ] ()
        in
        (match r.Multi.loop.Loop.verdict with
        | Loop.Proved -> ()
        | _ -> Alcotest.fail "expected Proved");
        let m_toggle = List.assoc "toggle" r.Multi.component_models in
        let m_echo = List.assoc "echo" r.Multi.component_models in
        check_bool "toggle model conforms" true (Conformance.conforms m_toggle toggle);
        check_bool "echo model conforms" true (Conformance.conforms m_echo echo);
        check_int "toggle fully explored" 2 (Incomplete.num_states m_toggle));
    test "multi loop finds a real joint deadlock" (fun () ->
        (* the driver flips twice in a row expecting lit both times; the
           toggle answers lit only from off *)
        let driver =
          automaton ~name:"driver" ~inputs:[ "lit"; "pong" ] ~outputs:[ "flip"; "ping" ]
            ~trans:
              [ ("d0", [ "lit" ], [ "flip" ], "d1"); ("d1", [ "lit" ], [ "flip" ], "d0") ]
            ~initial:[ "d0" ] ()
        in
        let r =
          Multi.run ~context:driver ~property:Mechaml_logic.Ctl.True
            ~legacies:[ box_toggle (); box_echo () ] ()
        in
        match r.Multi.loop.Loop.verdict with
        | Loop.Real_violation { kind = Loop.Deadlock; _ } -> ()
        | _ -> Alcotest.fail "expected a real deadlock");
    test "split_model attributes refusals only when unambiguous" (fun () ->
        let strict =
          automaton ~name:"strict" ~inputs:[ "go" ] ~outputs:[ "done" ]
            ~trans:[ ("s", [ "go" ], [ "done" ], "t"); ("t", [], [], "t") ]
            ~initial:[ "s" ] ()
        in
        let boxes = [ box_toggle (); Blackbox.of_automaton strict ] in
        let m =
          Incomplete.create ~name:"joint" ~inputs:[ "flip"; "go" ] ~outputs:[ "lit"; "done" ]
            ~initial_state:"off&s"
        in
        (* known: toggle answers silence at off *)
        let m =
          Incomplete.add_transition m ~src:"off&s"
            (Incomplete.interaction ~inputs:[ "flip"; "go" ] ~outputs:[ "lit"; "done" ])
            ~dst:"on&t"
        in
        let m = Incomplete.add_refusal m ~state:"off&s" ~inputs:[ "flip" ] in
        let parts = Multi.split_model ~components:boxes m in
        let m_toggle = List.assoc "toggle" parts and m_strict = List.assoc "strict" parts in
        (* the toggle's response to flip is known from the transition, so the
           refusal of {flip} (strict got silence) is attributed to strict *)
        check_int "strict got the refusal" 1 (Incomplete.num_refusals m_strict);
        check_int "toggle got none" 0 (Incomplete.num_refusals m_toggle));
  ]

let () = Alcotest.run "multi" [ ("unit", unit_tests) ]
