module Lstar = Mechaml_learnlib.Lstar
module Mealy = Mechaml_learnlib.Mealy
module Oracle = Mechaml_learnlib.Oracle
module Blackbox = Mechaml_legacy.Blackbox
open Mechaml_scenarios
open Helpers

let learn_exact auto alphabet =
  let box = Blackbox.of_automaton auto in
  let truth = Mealy.of_automaton ~alphabet auto in
  let r = Lstar.learn ~box ~alphabet ~equivalence:(Lstar.Perfect truth) () in
  (r, truth)

let unit_tests =
  [
    test "alphabet_of_signals" (fun () ->
        Alcotest.(check (list (list string))) "singletons with empty"
          [ []; [ "a" ]; [ "b" ] ]
          (Lstar.alphabet_of_signals [ "a"; "b" ]);
        Alcotest.(check (list (list string))) "without empty"
          [ [ "a" ] ]
          (Lstar.alphabet_of_signals ~include_empty:false [ "a" ]);
        check_int "pairs included" 7
          (List.length (Lstar.alphabet_of_signals ~max_set_size:2 [ "a"; "b"; "c" ])));
    test "oracle caches prefixes and counts executions" (fun () ->
        let box = Blackbox.of_automaton Railcab.legacy_correct in
        let alphabet = Lstar.alphabet_of_signals Railcab.front_to_rear in
        let oracle = Oracle.create ~box ~alphabet in
        let w = [ 0; 2 ] in
        ignore (Oracle.query oracle w);
        ignore (Oracle.query oracle [ 0 ]);
        (* the prefix was cached by the longer query *)
        let s = Oracle.stats oracle in
        check_int "one execution" 1 s.Oracle.output_queries;
        check_int "one cache hit" 1 s.Oracle.cached_queries;
        check_int "one reset" 1 s.Oracle.resets);
    test "oracle observes refusals as Blocked without advancing" (fun () ->
        let box = Blackbox.of_automaton Railcab.legacy_correct in
        let alphabet = Lstar.alphabet_of_signals Railcab.front_to_rear in
        let oracle = Oracle.create ~box ~alphabet in
        (* empty-input twice: first emits the proposal, the second is refused
           in noConvoy::wait, then startConvoy is accepted from the same
           state. *)
        let idx s = Mealy.alphabet_index (Mealy.of_automaton ~alphabet Railcab.legacy_correct) s in
        let outs = Oracle.query oracle [ idx []; idx []; idx [ "startConvoy" ] ] in
        check_bool "middle blocked" true (List.nth outs 1 = Mealy.Blocked);
        check_bool "still accepts start" true (List.nth outs 2 = Mealy.Out []));
    test "L* learns the RailCab rear component exactly" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Railcab.front_to_rear in
        let r, truth = learn_exact Railcab.legacy_correct alphabet in
        check_bool "equivalent to ground truth" true
          (Mealy.equivalent truth r.Lstar.hypothesis = None);
        check_int "minimal state count" 4 (Mealy.num_states r.Lstar.hypothesis));
    test "L* learns the toggle sender" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r, truth = learn_exact Protocol.sender_correct alphabet in
        check_bool "equivalent" true (Mealy.equivalent truth r.Lstar.hypothesis = None));
    test "L* learns the full lock — all n+1 states" (fun () ->
        let n = 8 in
        let r, truth = learn_exact (Families.lock_legacy ~n) Families.lock_alphabet in
        check_bool "equivalent" true (Mealy.equivalent truth r.Lstar.hypothesis = None);
        check_int "n+1 states" (n + 1) (Mealy.num_states r.Lstar.hypothesis));
    test "L* query counts grow with component size" (fun () ->
        let q n =
          let r, _ = learn_exact (Families.lock_legacy ~n) Families.lock_alphabet in
          r.Lstar.stats.Oracle.output_queries
        in
        check_bool "monotone-ish growth" true (q 4 < q 8 && q 8 < q 12));
    test "L* with a W-method oracle converges on small machines" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let box = Blackbox.of_automaton Protocol.sender_correct in
        let r =
          Lstar.learn ~box ~alphabet ~equivalence:(Lstar.Wmethod { extra_states = 4 }) ()
        in
        let truth = Mealy.of_automaton ~alphabet Protocol.sender_correct in
        check_bool "equivalent" true (Mealy.equivalent truth r.Lstar.hypothesis = None);
        check_bool "equivalence queries counted" true (r.Lstar.stats.Oracle.equivalence_queries >= 1));
    test "all three counterexample treatments learn the lock exactly" (fun () ->
        let n = 8 in
        let truth = Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n) in
        List.iter
          (fun processing ->
            let r =
              Lstar.learn ~box:(Families.lock_box ~n) ~alphabet:Families.lock_alphabet
                ~equivalence:(Lstar.Perfect truth) ~ce_processing:processing ()
            in
            check_bool "equivalent" true (Mealy.equivalent truth r.Lstar.hypothesis = None);
            check_int "n+1 states" (n + 1) (Mealy.num_states r.Lstar.hypothesis))
          [
            Mechaml_learnlib.Obs_table.Angluin_prefixes;
            Mechaml_learnlib.Obs_table.Maler_pnueli_suffixes;
            Mechaml_learnlib.Obs_table.Rivest_schapire;
          ]);
    test "Rivest-Schapire adds single columns (one equivalence query per split)" (fun () ->
        let n = 8 in
        let truth = Mealy.of_automaton ~alphabet:Families.lock_alphabet (Families.lock_legacy ~n) in
        let rs =
          Lstar.learn ~box:(Families.lock_box ~n) ~alphabet:Families.lock_alphabet
            ~equivalence:(Lstar.Perfect truth)
            ~ce_processing:Mechaml_learnlib.Obs_table.Rivest_schapire ()
        in
        let mp =
          Lstar.learn ~box:(Families.lock_box ~n) ~alphabet:Families.lock_alphabet
            ~equivalence:(Lstar.Perfect truth)
            ~ce_processing:Mechaml_learnlib.Obs_table.Maler_pnueli_suffixes ()
        in
        check_bool "more rounds, not more columns" true
          (rs.Lstar.rounds >= mp.Lstar.rounds && rs.Lstar.table_columns <= mp.Lstar.table_columns));
    test "Rivest-Schapire on random machines" (fun () ->
        List.iter
          (fun seed ->
            let auto =
              Families.random_machine ~seed ~states:5 ~inputs:[ "p"; "q" ] ~outputs:[ "r" ]
            in
            let alphabet = Lstar.alphabet_of_signals [ "p"; "q" ] in
            let truth = Mealy.of_automaton ~alphabet auto in
            let r =
              Lstar.learn ~box:(Mechaml_legacy.Blackbox.of_automaton auto) ~alphabet
                ~equivalence:(Lstar.Perfect truth)
                ~ce_processing:Mechaml_learnlib.Obs_table.Rivest_schapire ()
            in
            check_bool
              (Printf.sprintf "seed %d equivalent" seed)
              true
              (Mealy.equivalent truth r.Lstar.hypothesis = None))
          [ 11; 12; 13; 14; 15 ]);
    test "learning a random machine exactly" (fun () ->
        List.iter
          (fun seed ->
            let auto =
              Families.random_machine ~seed ~states:5 ~inputs:[ "p"; "q" ] ~outputs:[ "r" ]
            in
            let alphabet = Lstar.alphabet_of_signals [ "p"; "q" ] in
            let r, truth = learn_exact auto alphabet in
            check_bool
              (Printf.sprintf "seed %d equivalent" seed)
              true
              (Mealy.equivalent truth r.Lstar.hypothesis = None))
          [ 1; 2; 3; 4; 5 ]);
  ]

let () = Alcotest.run "lstar" [ ("unit", unit_tests) ]
