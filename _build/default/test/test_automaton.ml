module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
open Helpers

let simple () =
  automaton ~inputs:[ "go"; "stop" ] ~outputs:[ "ok" ]
    ~states:[ ("idle", [ "p.idle" ]); ("busy", [ "p.busy" ]) ]
    ~trans:[ ("idle", [ "go" ], [ "ok" ], "busy"); ("busy", [ "stop" ], [], "idle") ]
    ~initial:[ "idle" ] ()

let unit_tests =
  [
    test "builder constructs states in first-mention order" (fun () ->
        let m = simple () in
        check_int "2 states" 2 (Automaton.num_states m);
        check_string "state 0" "idle" (Automaton.state_name m 0);
        check_string "state 1" "busy" (Automaton.state_name m 1);
        check_int "2 transitions" 2 (Automaton.num_transitions m));
    test "state_index roundtrips" (fun () ->
        let m = simple () in
        check_int "busy" 1 (Automaton.state_index m "busy");
        Alcotest.(check (option int)) "missing" None (Automaton.state_index_opt m "zzz"));
    test "labels" (fun () ->
        let m = simple () in
        check_bool "idle has p.idle" true (Automaton.has_prop m 0 "p.idle");
        check_bool "idle lacks p.busy" false (Automaton.has_prop m 0 "p.busy");
        check_bool "unknown prop is false" false (Automaton.has_prop m 0 "nope"));
    test "accepts and successors" (fun () ->
        let m = simple () in
        let go = Universe.set_of_names m.Automaton.inputs [ "go" ] in
        let ok = Universe.set_of_names m.Automaton.outputs [ "ok" ] in
        let empty = Mechaml_util.Bitset.empty in
        check_bool "accepts go/ok" true (Automaton.accepts m 0 go ok);
        check_bool "rejects go/-" false (Automaton.accepts m 0 go empty);
        Alcotest.(check (list int)) "successor" [ 1 ] (Automaton.successors m 0 go ok));
    test "blocking detection" (fun () ->
        let m =
          automaton ~inputs:[] ~outputs:[] ~trans:[ ("a", [], [], "b") ] ~initial:[ "a" ] ()
        in
        check_bool "a not blocking" false (Automaton.is_blocking m 0);
        check_bool "b blocking" true (Automaton.is_blocking m 1));
    test "determinism notions" (fun () ->
        let det = simple () in
        check_bool "deterministic" true (Automaton.deterministic det);
        check_bool "input-deterministic" true (Automaton.input_deterministic det);
        let nondet =
          automaton ~inputs:[ "x" ] ~outputs:[ "y" ]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "x" ], [ "y" ], "a") ]
            ~initial:[ "a" ] ()
        in
        (* Two different responses to the same input: deterministic in the
           paper's (s,A,B) sense, but not input-deterministic. *)
        check_bool "paper-deterministic" true (Automaton.deterministic nondet);
        check_bool "not input-deterministic" false (Automaton.input_deterministic nondet);
        let dup =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "x" ], [], "b"); ("b", [], [], "b") ]
            ~initial:[ "a" ] ()
        in
        check_bool "same (s,A,B) twice" false (Automaton.deterministic dup));
    test "composable and orthogonal" (fun () ->
        let m = simple () in
        let peer =
          automaton ~name:"peer" ~inputs:[ "ok" ] ~outputs:[ "go"; "stop" ]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        check_bool "composable" true (Automaton.composable m peer);
        check_bool "not orthogonal (connected)" false (Automaton.orthogonal m peer));
    test "builder validates signals" (fun () ->
        let b = Automaton.Builder.create ~name:"x" ~inputs:[ "a" ] ~outputs:[] () in
        match Automaton.Builder.add_trans b ~src:"s" ~inputs:[ "nope" ] ~dst:"s" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "builder requires initial state" (fun () ->
        let b = Automaton.Builder.create ~name:"x" ~inputs:[] ~outputs:[] () in
        ignore (Automaton.Builder.add_state b "s");
        match Automaton.Builder.build b with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "restrict projects signals and merges duplicates" (fun () ->
        let m =
          automaton ~inputs:[ "a"; "hidden" ] ~outputs:[ "o" ]
            ~trans:
              [
                ("s", [ "a"; "hidden" ], [ "o" ], "t");
                ("s", [ "a" ], [ "o" ], "t");
                ("t", [], [], "t");
              ]
            ~initial:[ "s" ] ()
        in
        let restricted =
          Automaton.restrict m
            ~inputs:(Universe.of_list [ "a" ])
            ~outputs:(Universe.of_list [ "o" ])
            ~props:Universe.empty
        in
        (* both transitions collapse to a/o after hiding "hidden" *)
        check_int "merged" 1 (List.length (Automaton.transitions_from restricted 0)));
    test "relabel replaces universe" (fun () ->
        let m = simple () in
        let props = Universe.of_list [ "q" ] in
        let m' = Automaton.relabel m ~props (fun _ -> Universe.set_of_names props [ "q" ]) in
        check_bool "all labelled q" true (Automaton.has_prop m' 1 "q"));
    test "rename and map_states" (fun () ->
        let m = Automaton.rename (simple ()) "other" in
        check_string "renamed" "other" m.Automaton.name;
        let m' = Automaton.map_states m ~f:(fun s -> "S" ^ string_of_int s) in
        check_string "mapped" "S0" (Automaton.state_name m' 0));
    test "pp renders the state names" (fun () ->
        let s = Format.asprintf "%a" Automaton.pp (simple ()) in
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        check_bool "mentions idle" true (contains s "idle");
        check_bool "mentions busy" true (contains s "busy"));
  ]

let () = Alcotest.run "automaton" [ ("unit", unit_tests) ]
