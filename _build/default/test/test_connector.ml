module Connector = Mechaml_muml.Connector
module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Universe = Mechaml_ts.Universe
open Helpers

let routes = [ ("msg_in", "msg_out") ]

let unit_tests =
  [
    test "delay-1 channel has empty and full buffer states" (fun () ->
        let ch = Connector.channel ~name:"ch" ~routes () in
        check_int "2 states" 2 (Automaton.num_states ch));
    test "a message is delivered exactly delay steps later" (fun () ->
        let ch = Connector.channel ~name:"ch" ~delay:2 ~routes () in
        (* drive by hand: enqueue msg, then two silent steps *)
        let input m = Universe.set_of_names ch.Automaton.inputs m in
        let output m = Universe.set_of_names ch.Automaton.outputs m in
        let s0 = List.hd ch.Automaton.initial in
        let step s a b =
          match Automaton.successors ch s a b with
          | [ d ] -> d
          | _ -> Alcotest.fail "expected a unique channel move"
        in
        (* step 1: msg arrives, nothing delivered *)
        let s1 = step s0 (input [ "msg_in" ]) (output []) in
        (* step 2: silence, nothing delivered yet *)
        let s2 = step s1 (input []) (output []) in
        (* step 3: silence in, message delivered *)
        let s3 = step s2 (input []) (output [ "msg_out" ]) in
        check_int "back to empty" s0 s3);
    test "reliable channel never drops" (fun () ->
        let ch = Connector.channel ~name:"ch" ~routes () in
        (* from the empty state, receiving msg_in has exactly one successor *)
        let a = Universe.set_of_names ch.Automaton.inputs [ "msg_in" ] in
        let moves =
          List.filter
            (fun (t : Automaton.trans) -> Mechaml_util.Bitset.equal t.input a)
            (Automaton.transitions_from ch (List.hd ch.Automaton.initial))
        in
        check_int "single outcome" 1 (List.length moves));
    test "lossy channel may drop" (fun () ->
        let ch = Connector.channel ~name:"ch" ~lossy:true ~routes () in
        let a = Universe.set_of_names ch.Automaton.inputs [ "msg_in" ] in
        let moves =
          List.filter
            (fun (t : Automaton.trans) -> Mechaml_util.Bitset.equal t.input a)
            (Automaton.transitions_from ch (List.hd ch.Automaton.initial))
        in
        check_int "enqueue or drop" 2 (List.length moves));
    test "two routes ride the same channel" (fun () ->
        let ch =
          Connector.channel ~name:"ch" ~routes:[ ("a_in", "a_out"); ("b_in", "b_out") ] ()
        in
        check_int "3 buffer states" 3 (Automaton.num_states ch));
    test "parameter validation" (fun () ->
        (match Connector.channel ~name:"ch" ~delay:0 ~routes () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "delay 0");
        (match Connector.channel ~name:"ch" ~routes:[] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "no routes");
        (match Connector.channel ~name:"ch" ~routes:[ ("x", "y"); ("x", "z") ] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate inputs");
        match Connector.channel ~name:"ch" ~delay:20 ~routes:[ ("a", "b"); ("c", "d") ] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "state space too large");
    test "channel composes between sender and receiver" (fun () ->
        (* sender -> channel -> receiver with distinct signal names *)
        let sender =
          automaton ~name:"S" ~inputs:[] ~outputs:[ "msg_in" ]
            ~trans:[ ("s", [], [ "msg_in" ], "t"); ("t", [], [], "t") ]
            ~initial:[ "s" ] ()
        in
        let receiver =
          automaton ~name:"R" ~inputs:[ "msg_out" ] ~outputs:[]
            ~states:[ ("got", [ "R.got" ]) ]
            ~trans:[ ("r", [], [], "r"); ("r", [ "msg_out" ], [], "got"); ("got", [], [], "got") ]
            ~initial:[ "r" ] ()
        in
        let ch = Connector.channel ~name:"ch" ~routes () in
        let system = Compose.parallel_many [ sender; ch; receiver ] in
        check_bool "receiver can get the message" true
          (Mechaml_mc.Checker.holds system (Mechaml_logic.Parser.parse_exn "E<> R.got")));
  ]

let () = Alcotest.run "connector" [ ("unit", unit_tests) ]
