module Rtsc = Mechaml_rtsc.Rtsc
module Automaton = Mechaml_ts.Automaton
module Reach = Mechaml_ts.Reach
open Helpers

let simple_chart () =
  let c = Rtsc.create ~name:"c" ~inputs:[ "go" ] ~outputs:[ "done" ] () in
  Rtsc.add_state c ~initial:true ~idle:true "off";
  Rtsc.add_state c "on";
  Rtsc.add_transition c ~src:"off" ~trigger:[ "go" ] ~dst:"on" ();
  Rtsc.add_transition c ~src:"on" ~effect:[ "done" ] ~dst:"off" ();
  c

let unit_tests =
  [
    test "flat chart flattens 1:1" (fun () ->
        let m = Rtsc.flatten (simple_chart ()) in
        check_int "2 states" 2 (Automaton.num_states m);
        (* off: idle self-loop + go; on: done *)
        check_int "3 transitions" 3 (Automaton.num_transitions m));
    test "hierarchy: composite entry goes to the initial child" (fun () ->
        let c = Rtsc.create ~name:"h" ~inputs:[ "in" ] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "top";
        Rtsc.add_state c ~parent:"top" ~initial:true "first";
        Rtsc.add_state c ~parent:"top" "second";
        Rtsc.add_state c "other";
        Rtsc.add_transition c ~src:"top::first" ~trigger:[ "in" ] ~dst:"top::second" ();
        Rtsc.add_transition c ~src:"top::second" ~trigger:[ "in" ] ~dst:"other" ();
        Rtsc.add_transition c ~src:"other" ~trigger:[ "in" ] ~dst:"top" ();
        let m = Rtsc.flatten c in
        (* entering "top" lands in top::first *)
        let other = Automaton.state_index m "other" in
        let succ =
          Automaton.successors m other
            (Mechaml_ts.Universe.set_of_names m.Automaton.inputs [ "in" ])
            Mechaml_util.Bitset.empty
        in
        Alcotest.(check (list string)) "enters initial child" [ "top::first" ]
          (List.map (Automaton.state_name m) succ));
    test "labels include all ancestors with the prefix" (fun () ->
        let c = Rtsc.create ~name:"h" ~inputs:[] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "a";
        Rtsc.add_state c ~parent:"a" ~initial:true "b";
        Rtsc.add_state c ~parent:"a::b" ~initial:true ~idle:true "c";
        let m = Rtsc.flatten ~label_prefix:"role." c in
        let s = Automaton.state_index m "a::b::c" in
        check_bool "role.a" true (Automaton.has_prop m s "role.a");
        check_bool "role.a::b" true (Automaton.has_prop m s "role.a::b");
        check_bool "role.a::b::c" true (Automaton.has_prop m s "role.a::b::c"));
    test "outer transitions fire from descendant leaves" (fun () ->
        let c = Rtsc.create ~name:"h" ~inputs:[ "abort" ] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "work";
        Rtsc.add_state c ~parent:"work" ~initial:true ~idle:true "inner";
        Rtsc.add_state c ~idle:true "stopped";
        Rtsc.add_transition c ~src:"work" ~trigger:[ "abort" ] ~dst:"stopped" ();
        let m = Rtsc.flatten c in
        let inner = Automaton.state_index m "work::inner" in
        let succ =
          Automaton.successors m inner
            (Mechaml_ts.Universe.set_of_names m.Automaton.inputs [ "abort" ])
            Mechaml_util.Bitset.empty
        in
        Alcotest.(check (list string)) "outer abort applies" [ "stopped" ]
          (List.map (Automaton.state_name m) succ));
    test "clocks: guard delays a transition" (fun () ->
        let c = Rtsc.create ~name:"t" ~inputs:[] ~outputs:[ "fire" ] () in
        Rtsc.add_clock c "x";
        Rtsc.add_state c ~initial:true ~idle:true "wait";
        Rtsc.add_state c ~idle:true "fired";
        Rtsc.add_transition c ~src:"wait" ~effect:[ "fire" ] ~guard:[ ("x", Rtsc.Ge, 2) ]
          ~dst:"fired" ();
        let m = Rtsc.flatten c in
        (* configurations: wait[x=0], wait[x=1], wait[x=2 sat], wait[x=3 cap] ... *)
        let w0 = Automaton.state_index m "wait[x=0]" in
        check_int "only idle from x=0" 1 (List.length (Automaton.transitions_from m w0));
        let w2 = Automaton.state_index m "wait[x=2]" in
        check_int "idle + fire from x=2" 2 (List.length (Automaton.transitions_from m w2)));
    test "clocks: invariant forces progress" (fun () ->
        let c = Rtsc.create ~name:"t" ~inputs:[] ~outputs:[ "fire" ] () in
        Rtsc.add_clock c "x";
        Rtsc.add_state c ~initial:true ~idle:true ~invariant:[ ("x", Rtsc.Le, 1) ] "wait";
        Rtsc.add_state c ~idle:true "fired";
        Rtsc.add_transition c ~src:"wait" ~effect:[ "fire" ] ~dst:"fired" ();
        let m = Rtsc.flatten c in
        (* wait[x=2] must be unreachable: the invariant blocks further delay *)
        check_bool "x=2 not reachable" true (Automaton.state_index_opt m "wait[x=2]" = None));
    test "clocks: resets restart the clock" (fun () ->
        let c = Rtsc.create ~name:"t" ~inputs:[ "tick" ] ~outputs:[] () in
        Rtsc.add_clock c "x";
        Rtsc.add_state c ~initial:true ~idle:true "a";
        Rtsc.add_transition c ~src:"a" ~trigger:[ "tick" ] ~guard:[ ("x", Rtsc.Ge, 1) ]
          ~resets:[ "x" ] ~dst:"a" ();
        let m = Rtsc.flatten c in
        check_bool "reset configuration reachable" true
          (Automaton.state_index_opt m "a[x=0]" <> None);
        check_bool "no unbounded growth" true (Automaton.num_states m <= 3));
    test "clock values saturate at the cap" (fun () ->
        let c = Rtsc.create ~name:"t" ~inputs:[] ~outputs:[] () in
        Rtsc.add_clock c "x";
        Rtsc.add_state c ~initial:true ~idle:true "a";
        let m = Rtsc.flatten c in
        (* no constraints: cap is 1, configurations a[x=0], a[x=1] *)
        check_int "bounded configurations" 2 (Automaton.num_states m);
        check_bool "all reachable" true (Reach.reachable_count m = 2));
    test "validation errors" (fun () ->
        let c = Rtsc.create ~name:"v" ~inputs:[ "i" ] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "a";
        (match Rtsc.add_state c ~parent:"nope" "b" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown parent");
        (match Rtsc.add_state c "a" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate");
        (match Rtsc.add_transition c ~src:"a" ~trigger:[ "zzz" ] ~dst:"a" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown signal");
        match Rtsc.add_transition c ~src:"a" ~guard:[ ("y", Rtsc.Le, 1) ] ~dst:"a" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown clock");
    test "flatten requires an initial state" (fun () ->
        let c = Rtsc.create ~name:"v" ~inputs:[] ~outputs:[] () in
        Rtsc.add_state c "a";
        match Rtsc.flatten c with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "composite without initial child is an error on entry" (fun () ->
        let c = Rtsc.create ~name:"v" ~inputs:[] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "top";
        Rtsc.add_state c ~parent:"top" "child";
        match Rtsc.flatten c with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "interval delay: transition fires only within [l,u]" (fun () ->
        let c = Rtsc.create ~name:"d" ~inputs:[] ~outputs:[ "fire" ] () in
        Rtsc.add_state c ~initial:true ~idle:true "wait";
        Rtsc.add_state c ~idle:true "done";
        Rtsc.add_transition c ~src:"wait" ~effect:[ "fire" ] ~delay:(2, 3) ~dst:"done" ();
        let m = Rtsc.flatten c in
        let fire_enabled v =
          match Automaton.state_index_opt m (Printf.sprintf "wait[@wait=%d]" v) with
          | None -> false
          | Some s ->
            List.exists
              (fun (t : Automaton.trans) ->
                not (Mechaml_util.Bitset.is_empty t.Automaton.output))
              (Automaton.transitions_from m s)
        in
        check_bool "not at 0" false (fire_enabled 0);
        check_bool "not at 1" false (fire_enabled 1);
        check_bool "at 2" true (fire_enabled 2);
        check_bool "at 3" true (fire_enabled 3);
        (* beyond the window (clock saturates at 4) the guard fails *)
        check_bool "not at 4" false (fire_enabled 4));
    test "interval delay: entry resets the dwell clock" (fun () ->
        let c = Rtsc.create ~name:"d" ~inputs:[ "back" ] ~outputs:[ "fire" ] () in
        Rtsc.add_state c ~initial:true ~idle:true "wait";
        Rtsc.add_state c ~idle:true "done";
        Rtsc.add_transition c ~src:"wait" ~effect:[ "fire" ] ~delay:(1, 2) ~dst:"done" ();
        Rtsc.add_transition c ~src:"done" ~trigger:[ "back" ] ~dst:"wait" ();
        let m = Rtsc.flatten c in
        (* after done --back--> wait, the dwell clock must be 0 again *)
        check_bool "re-entry lands at @wait=0" true
          (List.exists
             (fun s ->
               Automaton.state_name m s |> fun n ->
               String.length n >= 4 && String.sub n 0 4 = "wait"
               && Automaton.has_prop m s "wait")
             (List.init (Automaton.num_states m) Fun.id));
        let donecfg =
          List.find
            (fun s ->
              let n = Automaton.state_name m s in
              String.length n >= 4 && String.sub n 0 4 = "done")
            (List.init (Automaton.num_states m) Fun.id)
        in
        let back =
          Automaton.successors m donecfg
            (Mechaml_ts.Universe.set_of_names m.Automaton.inputs [ "back" ])
            Mechaml_util.Bitset.empty
        in
        check_bool "back leads to a reset dwell clock" true
          (List.exists
             (fun s ->
               let n = Automaton.state_name m s in
               String.length n >= 9 && String.sub n 0 9 = "wait[@wai"
               && String.sub n (String.index n '=' + 1) 1 = "0")
             back));
    test "urgent delay bounds dwelling" (fun () ->
        let c = Rtsc.create ~name:"d" ~inputs:[] ~outputs:[ "fire" ] () in
        Rtsc.add_state c ~initial:true ~idle:true "wait";
        Rtsc.add_state c ~idle:true "done";
        Rtsc.add_transition c ~src:"wait" ~effect:[ "fire" ] ~delay:(1, 2) ~urgent:true
          ~dst:"done" ();
        let m = Rtsc.flatten c in
        (* the urgency invariant @wait <= 2 makes wait[@wait=3] unreachable *)
        check_bool "no dwelling past u" true
          (Automaton.state_index_opt m "wait[@wait=3]" = None));
    test "delay validation" (fun () ->
        let c = Rtsc.create ~name:"d" ~inputs:[] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "s";
        (match Rtsc.add_transition c ~src:"s" ~delay:(3, 1) ~dst:"s" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "u < l accepted");
        match Rtsc.add_transition c ~src:"s" ~urgent:true ~dst:"s" () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "urgent without delay accepted");
    test "leaf_paths lists leaves in declaration order" (fun () ->
        let c = Rtsc.create ~name:"v" ~inputs:[] ~outputs:[] () in
        Rtsc.add_state c ~initial:true "a";
        Rtsc.add_state c ~parent:"a" ~initial:true ~idle:true "b";
        Rtsc.add_state c ~idle:true "c";
        Alcotest.(check (list string)) "leaves" [ "a::b"; "c" ] (Rtsc.leaf_paths c));
  ]

let () = Alcotest.run "rtsc" [ ("unit", unit_tests) ]
