module Mealy = Mechaml_learnlib.Mealy
module Automaton = Mechaml_ts.Automaton
open Helpers

let alphabet = [ []; [ "x" ] ]

(* A two-state toggle: on "x" it alternates outputs. *)
let toggle () =
  Mealy.create ~alphabet
    ~trans:
      [|
        [| (Mealy.Out [], 0); (Mealy.Out [ "u" ], 1) |];
        [| (Mealy.Out [], 1); (Mealy.Out [ "v" ], 0) |];
      |]
    ()

let unit_tests =
  [
    test "create validates shape" (fun () ->
        (match Mealy.create ~alphabet ~trans:[| [| (Mealy.Out [], 0) |] |] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "row too short");
        (match Mealy.create ~alphabet ~trans:[| [| (Mealy.Out [], 5); (Mealy.Out [], 0) |] |] () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "target out of range");
        match
          Mealy.create ~alphabet ~trans:[| [| (Mealy.Blocked, 0); (Mealy.Out [], 0) |];
                                           [| (Mealy.Blocked, 0); (Mealy.Out [], 1) |] |] ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "blocked must self-loop");
    test "step and run_word" (fun () ->
        let m = toggle () in
        Alcotest.(check int) "next" 1 (snd (Mealy.step m 0 1));
        let outs = Mealy.run_word m [ 1; 1; 0; 1 ] in
        check_bool "alternating outputs" true
          (outs = [ Mealy.Out [ "u" ]; Mealy.Out [ "v" ]; Mealy.Out [] ; Mealy.Out [ "u" ] ]));
    test "state_after follows transitions" (fun () ->
        let m = toggle () in
        check_int "after xx back to 0" 0 (Mealy.state_after m [ 1; 1 ]);
        check_int "after x at 1" 1 (Mealy.state_after m [ 1 ]));
    test "alphabet_index normalises" (fun () ->
        let m = toggle () in
        check_int "empty" 0 (Mealy.alphabet_index m []);
        check_int "x" 1 (Mealy.alphabet_index m [ "x" ]);
        match Mealy.alphabet_index m [ "zzz" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "of_automaton captures refusals as Blocked" (fun () ->
        let auto =
          automaton ~inputs:[ "x" ] ~outputs:[ "u" ]
            ~trans:[ ("a", [ "x" ], [ "u" ], "b"); ("b", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let m = Mealy.of_automaton ~alphabet auto in
        (* state a refuses silence, answers x *)
        check_bool "a blocks on empty" true (fst (Mealy.step m 0 0) = Mealy.Blocked);
        check_bool "a answers x with u" true (fst (Mealy.step m 0 1) = Mealy.Out [ "u" ]);
        (* blocked self-loops *)
        check_int "blocked stays" 0 (snd (Mealy.step m 0 0)));
    test "to_automaton inverts of_automaton behaviourally" (fun () ->
        let auto =
          automaton ~inputs:[ "x" ] ~outputs:[ "u" ]
            ~trans:[ ("a", [ "x" ], [ "u" ], "b"); ("b", [], [], "a"); ("b", [ "x" ], [], "b") ]
            ~initial:[ "a" ] ()
        in
        let m = Mealy.of_automaton ~alphabet auto in
        let back = Mealy.to_automaton m in
        let m2 = Mealy.of_automaton ~alphabet back in
        check_bool "equivalent" true (Mealy.equivalent m m2 = None));
    test "equivalent detects differences with a shortest word" (fun () ->
        let a = toggle () in
        let b =
          Mealy.create ~alphabet
            ~trans:
              [|
                [| (Mealy.Out [], 0); (Mealy.Out [ "u" ], 1) |];
                [| (Mealy.Out [], 1); (Mealy.Out [ "u" ], 0) |];
              |]
            ()
        in
        (match Mealy.equivalent a b with
        | Some w -> check_int "differs after two x" 2 (List.length w)
        | None -> Alcotest.fail "machines differ");
        check_bool "self equivalent" true (Mealy.equivalent a a = None));
    test "distinguishing_words separate all states" (fun () ->
        let m = toggle () in
        let words = Mealy.distinguishing_words m in
        check_bool "nonempty" true (words <> []);
        check_bool "some word separates the two states" true
          (List.exists
             (fun w ->
               let from0 =
                 List.fold_left
                   (fun (s, acc) a ->
                     let o, s' = Mealy.step m s a in
                     (s', o :: acc))
                   (0, []) w
               and from1 =
                 List.fold_left
                   (fun (s, acc) a ->
                     let o, s' = Mealy.step m s a in
                     (s', o :: acc))
                   (1, []) w
               in
               snd from0 <> snd from1)
             words));
    test "pp_output" (fun () ->
        check_string "blocked" "⊥" (Format.asprintf "%a" Mealy.pp_output Mealy.Blocked);
        check_string "out" "{a,b}" (Format.asprintf "%a" Mealy.pp_output (Mealy.Out [ "a"; "b" ])));
  ]

let () = Alcotest.run "mealy" [ ("unit", unit_tests) ]
