module Assembly = Mechaml_muml.Assembly
module Automaton = Mechaml_ts.Automaton
module Universe = Mechaml_ts.Universe
module Checker = Mechaml_mc.Checker
module Parser = Mechaml_logic.Parser
open Helpers

let producer () =
  automaton ~name:"P" ~inputs:[] ~outputs:[ "out" ]
    ~states:[ ("p0", [ "sent" ]) ]
    ~trans:[ ("p0", [], [ "out" ], "p1"); ("p1", [], [], "p1") ]
    ~initial:[ "p0" ] ()

let consumer () =
  automaton ~name:"C" ~inputs:[ "in" ] ~outputs:[]
    ~states:[ ("c1", [ "got" ]) ]
    ~trans:[ ("c0", [ "in" ], [], "c1"); ("c0", [], [], "c0"); ("c1", [], [], "c1") ]
    ~initial:[ "c0" ] ()

let wired () =
  let t = Assembly.create () in
  Assembly.add_instance t ~name:"a" (producer ());
  Assembly.add_instance t ~name:"b" (consumer ());
  Assembly.connect t ~from_:("a", "out") ~to_:("b", "in");
  t

let unit_tests =
  [
    test "wired assembly delivers the message" (fun () ->
        let sys = Assembly.build (wired ()) in
        check_bool "consumer gets it" true
          (Checker.holds sys (Parser.parse_exn "E<> got")));
    test "wire signals carry the wire name" (fun () ->
        let sys = Assembly.build (wired ()) in
        let w = Assembly.wire_name ~from_:("a", "out") ~to_:("b", "in") in
        check_bool "wire in inputs" true (Universe.mem sys.Automaton.inputs w);
        check_bool "wire in outputs" true (Universe.mem sys.Automaton.outputs w));
    test "unconnected signals are qualified with the instance name" (fun () ->
        let t = Assembly.create () in
        Assembly.add_instance t ~name:"a" (producer ());
        Assembly.add_instance t ~name:"b" (consumer ());
        (* no wiring: signals stay external *)
        let sys = Assembly.build t in
        check_bool "a.out external" true (Universe.mem sys.Automaton.outputs "a.out");
        check_bool "b.in external" true (Universe.mem sys.Automaton.inputs "b.in");
        (* and with no wiring, the producer's output is never consumed *)
        check_bool "message still flows to the environment" true
          (Checker.holds sys (Parser.parse_exn "E<> sent")));
    test "duplicate instances rejected" (fun () ->
        let t = Assembly.create () in
        Assembly.add_instance t ~name:"a" (producer ());
        match Assembly.add_instance t ~name:"a" (consumer ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "direction and existence are validated" (fun () ->
        let t = Assembly.create () in
        Assembly.add_instance t ~name:"a" (producer ());
        Assembly.add_instance t ~name:"b" (consumer ());
        (match Assembly.connect t ~from_:("a", "nope") ~to_:("b", "in") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown output");
        (match Assembly.connect t ~from_:("a", "out") ~to_:("b", "nope") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unknown input");
        match Assembly.connect t ~from_:("b", "in") ~to_:("a", "out") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "direction mismatch");
    test "wires are point-to-point" (fun () ->
        let t = Assembly.create () in
        Assembly.add_instance t ~name:"a" (producer ());
        Assembly.add_instance t ~name:"b" (consumer ());
        Assembly.add_instance t ~name:"c" (consumer ());
        Assembly.connect t ~from_:("a", "out") ~to_:("b", "in");
        match Assembly.connect t ~from_:("a", "out") ~to_:("c", "in") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "output already wired");
    test "colliding propositions are qualified per instance" (fun () ->
        let t = Assembly.create () in
        (* two consumers share the "got" proposition *)
        Assembly.add_instance t ~name:"a" (producer ());
        Assembly.add_instance t ~name:"b" (consumer ());
        Assembly.add_instance t ~name:"c" (consumer ());
        Assembly.connect t ~from_:("a", "out") ~to_:("b", "in");
        let sys = Assembly.build t in
        check_bool "qualified props" true
          (Universe.mem sys.Automaton.props "b:got" && Universe.mem sys.Automaton.props "c:got");
        (* b is fed by the wire; c's input is open, so only the environment
           can trigger it — both remain reachable in the open composition,
           but under distinct propositions. *)
        check_bool "b can receive" true (Checker.holds sys (Parser.parse_exn "E<> b:got"));
        check_bool "c reachable only via its environment-facing input" true
          (Checker.holds sys (Parser.parse_exn "E<> c:got")));
    test "the railcab pattern wires through an assembly" (fun () ->
        (* wire the synchronous roles explicitly and re-verify the constraint *)
        let t = Assembly.create () in
        Assembly.add_instance t ~name:"front" Mechaml_scenarios.Railcab.context;
        Assembly.add_instance t ~name:"rear"
          (Mechaml_muml.Role.automaton Mechaml_scenarios.Railcab.rear_role);
        List.iter
          (fun s -> Assembly.connect t ~from_:("rear", s) ~to_:("front", s))
          Mechaml_scenarios.Railcab.rear_to_front;
        List.iter
          (fun s -> Assembly.connect t ~from_:("front", s) ~to_:("rear", s))
          Mechaml_scenarios.Railcab.front_to_rear;
        let sys = Assembly.build t in
        check_bool "constraint holds" true
          (Checker.holds sys Mechaml_scenarios.Railcab.constraint_);
        check_bool "deadlock free" true
          (Checker.holds sys Mechaml_logic.Ctl.deadlock_free));
    test "build requires at least one instance" (fun () ->
        match Assembly.build (Assembly.create ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
  ]

let () = Alcotest.run "assembly" [ ("unit", unit_tests) ]
