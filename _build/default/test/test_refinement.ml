module Refinement = Mechaml_ts.Refinement
module Simulation = Mechaml_ts.Simulation
module Run = Mechaml_ts.Run
open Helpers

let refines ?label_match c a = Refinement.refines ?label_match ~concrete:c ~abstract:a ()

let check_result ?label_match c a =
  Refinement.check ?label_match ~concrete:c ~abstract:a ()

let unit_tests =
  [
    test "reflexivity" (fun () ->
        let m () =
          automaton ~inputs:[ "x" ] ~outputs:[ "o" ]
            ~trans:[ ("a", [ "x" ], [ "o" ], "b"); ("b", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        check_bool "M ⊑ M" true (refines (m ()) (m ())));
    test "restriction of choices is not refinement (deadlock preservation)" (fun () ->
        (* The abstract automaton always accepts x; the concrete refuses it:
           the concrete has a deadlock run the abstract lacks — condition 2
           fails.  This is the reactivity-preserving part of Definition 4. *)
        let concrete =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let abstract =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [], [], "a"); ("a", [ "x" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        match check_result concrete abstract with
        | Refinement.Fails { reason = Refinement.Unmatched_refusal _; witness } ->
          check_bool "witness is a deadlock run" true witness.Run.deadlock
        | Refinement.Fails _ -> Alcotest.fail "wrong failure reason"
        | Refinement.Refines -> Alcotest.fail "should not refine");
    test "restriction is refinement when the abstract may also refuse" (fun () ->
        (* Non-deterministic abstract: one branch accepts x forever, another
           stops accepting — the concrete's refusals are then covered. *)
        let concrete =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "stop") ]
            ~initial:[ "a" ] ()
        in
        let abstract =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "x" ], [], "stop") ]
            ~initial:[ "a" ] ()
        in
        check_bool "refines" true (refines concrete abstract));
    test "new traces break refinement" (fun () ->
        let concrete =
          automaton ~inputs:[ "x"; "y" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a"); ("a", [ "y" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let abstract =
          automaton ~inputs:[ "x"; "y" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        match check_result concrete abstract with
        | Refinement.Fails { reason = Refinement.Missing_trace _; witness } ->
          check_bool "witness ends after the offending step" true (Run.length witness >= 1)
        | _ -> Alcotest.fail "expected Missing_trace");
    test "label mismatch detected at the right state" (fun () ->
        let concrete =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~states:[ ("a", []); ("b", [ "p" ]) ]
            ~trans:[ ("a", [ "x" ], [], "b"); ("b", [], [], "b") ]
            ~initial:[ "a" ] ()
        in
        let abstract =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~states:[ ("a", []); ("b", [ "q" ]) ]
            ~trans:[ ("a", [ "x" ], [], "b"); ("b", [], [], "b") ]
            ~initial:[ "a" ] ()
        in
        match check_result concrete abstract with
        | Refinement.Fails { reason = Refinement.Label_mismatch; witness } ->
          check_int "mismatch one step in" 1 (Run.length witness)
        | _ -> Alcotest.fail "expected Label_mismatch");
    test "wildcard labels admit chaos abstractions" (fun () ->
        let concrete =
          automaton ~inputs:[] ~outputs:[] ~states:[ ("s", [ "p" ]) ]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        let abstract =
          automaton ~inputs:[] ~outputs:[] ~states:[ ("w", [ "pc" ]) ]
            ~trans:[ ("w", [], [], "w"); ("w", [], [], "dead") ]
            ~initial:[ "w" ] ()
        in
        check_bool "wildcard refinement" true
          (refines ~label_match:(Simulation.Wildcard "pc") concrete abstract));
    test "nondeterministic abstract needs the subset construction" (fun () ->
        (* Trace inclusion holds although no simulation exists: the observer
           must consider both abstract branches at once.  Labels are empty so
           only conditions on traces and refusals matter. *)
        let concrete =
          automaton ~inputs:[ "a"; "b"; "c" ] ~outputs:[]
            ~trans:[ ("s", [ "a" ], [], "t"); ("t", [ "b" ], [], "u"); ("t", [ "c" ], [], "u") ]
            ~initial:[ "s" ] ()
        in
        let abstract =
          automaton ~inputs:[ "a"; "b"; "c" ] ~outputs:[]
            ~trans:
              [
                ("s", [ "a" ], [], "t1");
                ("s", [ "a" ], [], "t2");
                ("t1", [ "b" ], [], "u");
                ("t1", [ "c" ], [], "u");
                ("t2", [ "b" ], [], "u");
                ("t2", [ "c" ], [], "u");
              ]
            ~initial:[ "s" ] ()
        in
        check_bool "refines via observer" true (refines concrete abstract));
    test "refinement implies simulation on deterministic abstracts" (fun () ->
        let concrete =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("a", [ "x" ], [], "b"); ("b", [ "x" ], [], "a") ]
            ~initial:[ "a" ] ()
        in
        let abstract =
          automaton ~inputs:[ "x" ] ~outputs:[]
            ~trans:[ ("s", [ "x" ], [], "s") ]
            ~initial:[ "s" ] ()
        in
        check_bool "refines" true (refines concrete abstract);
        check_bool "simulates" true
          (Simulation.simulates ~concrete ~abstract ()));
  ]

let () = Alcotest.run "refinement" [ ("unit", unit_tests) ]
