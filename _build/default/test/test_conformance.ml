module Conformance = Mechaml_core.Conformance
module Incomplete = Mechaml_core.Incomplete
module Synthesis = Mechaml_core.Synthesis
module Blackbox = Mechaml_legacy.Blackbox
module Observation = Mechaml_legacy.Observation
open Helpers

let real () = Mechaml_scenarios.Railcab.legacy_correct

let box () = Blackbox.of_automaton (real ())

let i ~inputs ~outputs = Incomplete.interaction ~inputs ~outputs

let unit_tests =
  [
    test "the trivial initial model conforms (Lemma 4)" (fun () ->
        check_bool "conforms" true (Conformance.conforms (Synthesis.initial_model (box ())) (real ())));
    test "learning real observations preserves conformance (Lemma 7)" (fun () ->
        let inputs = [ []; [ "convoyProposalRejected" ]; []; [ "startConvoy" ] ] in
        let obs = Observation.observe ~box:(box ()) ~inputs in
        let m = Incomplete.learn_observation (Synthesis.initial_model (box ())) obs in
        check_bool "conforms" true (Conformance.conforms m (real ())));
    test "a made-up transition violates conformance" (fun () ->
        let m =
          Incomplete.add_transition
            (Synthesis.initial_model (box ()))
            ~src:"noConvoy::default"
            (i ~inputs:[ "startConvoy" ] ~outputs:[])
            ~dst:"convoy::default"
        in
        match Conformance.check m (real ()) with
        | Error (Conformance.Missing_transition _) -> ()
        | Error _ -> Alcotest.fail "wrong violation"
        | Ok () -> Alcotest.fail "should not conform");
    test "a made-up refusal violates conformance" (fun () ->
        let m =
          Incomplete.add_refusal (Synthesis.initial_model (box ())) ~state:"noConvoy::default"
            ~inputs:[]
        in
        match Conformance.check m (real ()) with
        | Error (Conformance.Refusal_not_real _) -> ()
        | Error _ -> Alcotest.fail "wrong violation"
        | Ok () -> Alcotest.fail "should not conform");
    test "an unknown state name is reported" (fun () ->
        let m =
          Incomplete.add_transition
            (Synthesis.initial_model (box ()))
            ~src:"noConvoy::default"
            (i ~inputs:[] ~outputs:[ "convoyProposal" ])
            ~dst:"phantom"
        in
        match Conformance.check m (real ()) with
        | Error (Conformance.Missing_transition _) | Error (Conformance.Unknown_state _) -> ()
        | Error _ -> Alcotest.fail "wrong violation"
        | Ok () -> Alcotest.fail "should not conform");
    test "a wrong initial state is reported" (fun () ->
        let m =
          Incomplete.create ~name:"m"
            ~inputs:(box ()).Blackbox.input_signals
            ~outputs:(box ()).Blackbox.output_signals
            ~initial_state:"convoy::default"
        in
        match Conformance.check m (real ()) with
        | Error Conformance.Initial_mismatch -> ()
        | Error _ -> Alcotest.fail "wrong violation"
        | Ok () -> Alcotest.fail "initial states differ");
    test "real refusals conform" (fun () ->
        (* noConvoy::wait really refuses silence *)
        let obs = Observation.observe ~box:(box ()) ~inputs:[ []; [] ] in
        let m = Incomplete.learn_observation (Synthesis.initial_model (box ())) obs in
        check_int "refusal learned" 1 (Incomplete.num_refusals m);
        check_bool "conforms" true (Conformance.conforms m (real ())));
  ]

let () = Alcotest.run "conformance" [ ("unit", unit_tests) ]
