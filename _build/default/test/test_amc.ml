module Amc = Mechaml_learnlib.Amc
module Bbc = Mechaml_learnlib.Bbc
module Lstar = Mechaml_learnlib.Lstar
module Oracle = Mechaml_learnlib.Oracle
module Checker = Mechaml_mc.Checker
module Ctl = Mechaml_logic.Ctl
open Mechaml_scenarios
open Helpers

let unit_tests =
  [
    test "AMC confirms the correct protocol sender up to the bound" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r =
          Amc.verify ~box:Protocol.box_correct ~context:Protocol.receiver ~alphabet
            ~state_bound:5 ()
        in
        match r.Amc.verdict with
        | Amc.Holds_up_to_bound { conformance_words } ->
          check_bool "paid a conformance suite" true (conformance_words > 0)
        | Amc.Real_violation _ -> Alcotest.fail "the correct sender integrates fine");
    test "AMC finds the fire-and-forget deadlock for real" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r =
          Amc.verify ~box:Protocol.box_fire_and_forget ~context:Protocol.receiver ~alphabet
            ~state_bound:4 ()
        in
        match r.Amc.verdict with
        | Amc.Real_violation { kind = `Deadlock; inputs } ->
          check_bool "nonempty trace" true (List.length inputs >= 1)
        | _ -> Alcotest.fail "expected a real deadlock");
    test "AMC on the restricted lock context holds" (fun () ->
        let n = 6 and depth = 2 in
        let r =
          Amc.verify ~box:(Families.lock_box ~n) ~context:(Families.lock_context ~n ~depth)
            ~alphabet:Families.lock_alphabet ~state_bound:(n + 1) ()
        in
        match r.Amc.verdict with
        | Amc.Holds_up_to_bound _ ->
          (* the contrast with the paper's loop: AMC needed the full bound *)
          check_bool "hypothesis grew beyond the context's reach" true
            (r.Amc.hypothesis_states > depth + 1)
        | Amc.Real_violation _ -> Alcotest.fail "restricted lock cannot deadlock");
    test "AMC rejects properties over hypothesis states" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        match
          Amc.verify ~box:Protocol.box_correct ~context:Protocol.receiver
            ~property:(Mechaml_logic.Parser.parse_exn "AG (not sender.wait1)")
            ~alphabet ~state_bound:4 ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
    test "AMC accepts context-side properties" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r =
          Amc.verify ~box:Protocol.box_correct ~context:Protocol.receiver
            ~property:(Mechaml_logic.Parser.parse_exn "AG (not (receiver.expect0 and receiver.expect1))")
            ~alphabet ~state_bound:5 ()
        in
        match r.Amc.verdict with
        | Amc.Holds_up_to_bound _ -> ()
        | Amc.Real_violation _ -> Alcotest.fail "states are mutually exclusive");
    test "BBC learns everything then checks once" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r =
          Bbc.verify ~box:Protocol.box_correct ~context:Protocol.receiver ~alphabet
            ~state_bound:2 ()
        in
        check_int "full model learned" 4 (Mechaml_learnlib.Mealy.num_states r.Bbc.learned);
        match r.Bbc.outcome with
        | Checker.Holds -> ()
        | Checker.Violated { explanation; _ } -> Alcotest.fail explanation);
    test "BBC flags the faulty sender" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Protocol.receiver_to_sender in
        let r =
          Bbc.verify ~box:Protocol.box_fire_and_forget ~context:Protocol.receiver ~alphabet
            ~state_bound:2 ()
        in
        match r.Bbc.outcome with
        | Checker.Violated { formula; _ } ->
          check_bool "deadlock freedom violated" true (Ctl.equal formula Ctl.deadlock_free)
        | Checker.Holds -> Alcotest.fail "composition deadlocks");
    test "BBC with labels can check legacy-side properties" (fun () ->
        let alphabet = Lstar.alphabet_of_signals Railcab.front_to_rear in
        let r =
          Bbc.verify ~box:Railcab.box_conflicting ~context:Railcab.context
            ~property:Railcab.constraint_
            ~label_of:(fun _ -> [])
            ~alphabet ~state_bound:2 ()
        in
        (* with no labels the constraint trivially holds on learned states —
           the deadlock is still found, showing why state labels matter *)
        match r.Bbc.outcome with
        | Checker.Violated _ -> ()
        | Checker.Holds -> Alcotest.fail "composition misbehaves");
    test "effort comparison: AMC pays orders of magnitude more than the loop" (fun () ->
        let n = 8 and depth = 2 in
        let amc =
          Amc.verify ~box:(Families.lock_box ~n) ~context:(Families.lock_context ~n ~depth)
            ~alphabet:Families.lock_alphabet ~state_bound:(n + 1) ()
        in
        let loop =
          Mechaml_core.Loop.run ~label_of:Families.lock_label_of
            ~context:(Families.lock_context ~n ~depth) ~property:Families.lock_property
            ~legacy:(Families.lock_box ~n) ()
        in
        let amc_symbols = amc.Amc.stats.Oracle.symbols in
        let loop_symbols = loop.Mechaml_core.Loop.test_steps_executed in
        check_bool
          (Printf.sprintf "AMC %d symbols vs loop %d" amc_symbols loop_symbols)
          true
          (amc_symbols > 10 * loop_symbols));
  ]

let () = Alcotest.run "amc" [ ("unit", unit_tests) ]
