(* Shared helpers for the test suite: compact automaton construction and
   alcotest/qcheck glue. *)

module Automaton = Mechaml_ts.Automaton

(* Build an automaton from a compact description:
   states: (name, props) list; trans: (src, inputs, outputs, dst) list. *)
let automaton ?(name = "m") ~inputs ~outputs ?(states = []) ~trans ~initial () =
  let b = Automaton.Builder.create ~name ~inputs ~outputs () in
  List.iter (fun (s, props) -> ignore (Automaton.Builder.add_state b ~props s)) states;
  List.iter
    (fun (src, ins, outs, dst) ->
      Automaton.Builder.add_trans b ~src ~inputs:ins ~outputs:outs ~dst ())
    trans;
  Automaton.Builder.set_initial b initial;
  Automaton.Builder.build b

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
