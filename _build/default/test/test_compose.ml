module Automaton = Mechaml_ts.Automaton
module Compose = Mechaml_ts.Compose
module Run = Mechaml_ts.Run
module Universe = Mechaml_ts.Universe
open Helpers

(* A ping/pong pair: left sends ping and expects pong, right mirrors. *)
let left () =
  automaton ~name:"L" ~inputs:[ "pong" ] ~outputs:[ "ping" ]
    ~states:[ ("l0", [ "L.idle" ]) ]
    ~trans:[ ("l0", [], [ "ping" ], "l1"); ("l1", [ "pong" ], [], "l0") ]
    ~initial:[ "l0" ] ()

let right () =
  automaton ~name:"R" ~inputs:[ "ping" ] ~outputs:[ "pong" ]
    ~states:[ ("r0", [ "R.idle" ]) ]
    ~trans:[ ("r0", [ "ping" ], [], "r1"); ("r1", [], [ "pong" ], "r0") ]
    ~initial:[ "r0" ] ()

let unit_tests =
  [
    test "ping-pong product has two states and loops" (fun () ->
        let p = Compose.parallel (left ()) (right ()) in
        check_int "2 reachable states" 2 (Automaton.num_states p.Compose.auto);
        check_int "2 transitions" 2 (Automaton.num_transitions p.Compose.auto);
        check_bool "no deadlock" true
          (Mechaml_ts.Reach.blocking_states p.Compose.auto = []));
    test "labels are unioned" (fun () ->
        let p = Compose.parallel (left ()) (right ()) in
        check_bool "left label" true (Automaton.has_prop p.Compose.auto 0 "L.idle");
        check_bool "right label" true (Automaton.has_prop p.Compose.auto 0 "R.idle"));
    test "provenance maps product states to pairs" (fun () ->
        let p = Compose.parallel (left ()) (right ()) in
        check_int "left of initial" 0 (Compose.left_state p 0);
        check_int "right of initial" 0 (Compose.right_state p 0);
        Alcotest.(check (option int)) "find_pair" (Some 0) (Compose.find_pair p (0, 0));
        Alcotest.(check (option int)) "unreachable pair" None (Compose.find_pair p (0, 1)));
    test "mismatched handshake deadlocks" (fun () ->
        (* right that never answers: the pair (l1, stuck) is a deadlock *)
        let mute =
          automaton ~name:"R" ~inputs:[ "ping" ] ~outputs:[ "pong" ]
            ~trans:[ ("r0", [ "ping" ], [], "stuck") ]
            ~initial:[ "r0" ] ()
        in
        let p = Compose.parallel (left ()) mute in
        check_int "deadlocked state exists" 1
          (List.length (Mechaml_ts.Reach.blocking_states p.Compose.auto)));
    test "unconsumed output blocks the step" (fun () ->
        (* left outputs ping but right has no consuming transition: no joint
           move at all (synchronous lossless communication). *)
        let deaf =
          automaton ~name:"R" ~inputs:[ "ping" ] ~outputs:[ "pong" ]
            ~trans:[ ("r0", [], [], "r0") ]
            ~initial:[ "r0" ] ()
        in
        let p = Compose.parallel (left ()) deaf in
        check_bool "initial blocks" true (Automaton.is_blocking p.Compose.auto 0));
    test "composability is checked" (fun () ->
        match Compose.parallel (left ()) (left ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "shared signals must be rejected");
    test "proposition overlap is checked" (fun () ->
        let l =
          automaton ~name:"L" ~inputs:[] ~outputs:[] ~states:[ ("s", [ "p" ]) ]
            ~trans:[ ("s", [], [], "s") ] ~initial:[ "s" ] ()
        in
        let r =
          automaton ~name:"R" ~inputs:[] ~outputs:[] ~states:[ ("t", [ "p" ]) ]
            ~trans:[ ("t", [], [], "t") ] ~initial:[ "t" ] ()
        in
        match Compose.parallel l r with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "overlapping props must be rejected");
    test "orthogonal automata interleave synchronously" (fun () ->
        let a =
          automaton ~name:"A" ~inputs:[] ~outputs:[ "u" ]
            ~trans:[ ("a0", [], [ "u" ], "a1"); ("a1", [], [], "a1") ]
            ~initial:[ "a0" ] ()
        in
        let b =
          automaton ~name:"B" ~inputs:[] ~outputs:[ "v" ]
            ~trans:[ ("b0", [], [ "v" ], "b1"); ("b1", [], [], "b1") ]
            ~initial:[ "b0" ] ()
        in
        let p = Compose.parallel a b in
        (* both must step each tick: a0b0 -> a1b1 -> a1b1 *)
        check_int "2 states" 2 (Automaton.num_states p.Compose.auto);
        let t = Automaton.transitions_from p.Compose.auto 0 in
        check_int "one joint first step" 1 (List.length t);
        let tr = List.hd t in
        Alcotest.(check (list string)) "joint outputs" [ "u"; "v" ]
          (Universe.names_of_set p.Compose.auto.Automaton.outputs tr.Automaton.output));
    test "project_left/right recover component runs" (fun () ->
        let p = Compose.parallel (left ()) (right ()) in
        let tr = List.hd (Automaton.transitions_from p.Compose.auto 0) in
        let run = Run.regular ~states:[ 0; tr.Automaton.dst ] ~io:[ (tr.Automaton.input, tr.Automaton.output) ] in
        let lrun = Compose.project_left p run and rrun = Compose.project_right p run in
        check_bool "left projection is a run of L" true (Run.is_run_of p.Compose.left lrun);
        check_bool "right projection is a run of R" true (Run.is_run_of p.Compose.right rrun));
    test "parallel_many composes a chain" (fun () ->
        let m = Compose.parallel_many [ left (); right () ] in
        check_int "same as binary product" 2 (Automaton.num_states m));
    test "parallel_many rejects empty" (fun () ->
        match Compose.parallel_many [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected raise");
  ]

let () = Alcotest.run "compose" [ ("unit", unit_tests) ]
