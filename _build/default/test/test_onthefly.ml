module Onthefly = Mechaml_mc.Onthefly
module Checker = Mechaml_mc.Checker
module Compose = Mechaml_ts.Compose
module Ctl = Mechaml_logic.Ctl
module Families = Mechaml_scenarios.Families
module Railcab = Mechaml_scenarios.Railcab
open Helpers

let agrees_with_materialized ~left ~right ~invariant =
  let fly = Onthefly.violates_invariant ~left ~right ~invariant () in
  let p = Compose.parallel left right in
  let materialized =
    Checker.check_conjunction p.Compose.auto [ invariant; Ctl.deadlock_free ]
  in
  match (fly.Onthefly.verdict, materialized) with
  | Onthefly.Holds, Checker.Holds -> true
  | Onthefly.Bad_state _, Checker.Violated { formula; _ } -> Ctl.equal formula invariant
  | Onthefly.Deadlocked _, Checker.Violated { formula; _ } ->
    Ctl.equal formula Ctl.deadlock_free
  | _ -> false

let unit_tests =
  [
    test "agrees with the materialized checker on the railcab pattern" (fun () ->
        let labelled =
          let u = Mechaml_ts.Universe.of_list [ "rearRole.noConvoy"; "rearRole.convoy" ] in
          Mechaml_ts.Automaton.relabel Railcab.legacy_correct ~props:u (fun s ->
              Mechaml_ts.Universe.set_of_names u
                (List.filter
                   (fun p -> Mechaml_ts.Universe.mem u p)
                   (Railcab.label_of
                      (Mechaml_ts.Automaton.state_name Railcab.legacy_correct s))))
        in
        check_bool "agrees" true
          (agrees_with_materialized ~left:Railcab.context ~right:labelled
             ~invariant:Railcab.constraint_));
    test "finds the conflicting legacy's violation" (fun () ->
        let labelled =
          let u = Mechaml_ts.Universe.of_list [ "rearRole.noConvoy"; "rearRole.convoy" ] in
          Mechaml_ts.Automaton.relabel Railcab.legacy_conflicting ~props:u (fun s ->
              Mechaml_ts.Universe.set_of_names u
                (List.filter
                   (fun p -> Mechaml_ts.Universe.mem u p)
                   (Railcab.label_of
                      (Mechaml_ts.Automaton.state_name Railcab.legacy_conflicting s))))
        in
        let r =
          Onthefly.violates_invariant ~left:Railcab.context ~right:labelled
            ~invariant:Railcab.constraint_ ()
        in
        match r.Onthefly.verdict with
        | Onthefly.Bad_state trace ->
          check_int "one step to the violation" 1 (List.length trace.Onthefly.io)
        | _ -> Alcotest.fail "expected Bad_state");
    test "finds deadlocks with a shortest trace" (fun () ->
        let r =
          Onthefly.check_safety ~left:Mechaml_scenarios.Protocol.receiver
            ~right:Mechaml_scenarios.Protocol.sender_fire_and_forget ()
        in
        match r.Onthefly.verdict with
        | Onthefly.Deadlocked trace -> check_int "after one period" 1 (List.length trace.Onthefly.io)
        | _ -> Alcotest.fail "expected Deadlocked");
    test "agrees with the materialized checker on random instances" (fun () ->
        List.iter
          (fun seed ->
            let legacy =
              Families.random_machine ~seed ~states:5 ~inputs:[ "u"; "v" ] ~outputs:[ "w" ]
            in
            let context =
              Families.random_context ~seed ~states:3 ~legacy_inputs:[ "u"; "v" ]
                ~legacy_outputs:[ "w" ]
            in
            check_bool
              (Printf.sprintf "seed %d" seed)
              true
              (agrees_with_materialized ~left:context ~right:legacy ~invariant:(Ctl.ag Ctl.True)))
          (List.init 20 (fun i -> i)));
    test "early exit explores fewer pairs than the full space" (fun () ->
        (* lock with a deep context: the deadlock-free sweep visits all pairs,
           a violation stops at the first bad pair *)
        let n = 64 in
        let left = Families.lock_context ~n ~depth:(n - 1) in
        let right = Families.lock_legacy ~n in
        let full = Onthefly.check_safety ~left ~right () in
        check_bool "holds" true (full.Onthefly.verdict = Onthefly.Holds);
        let early =
          Onthefly.check_safety ~left ~right
            ~bad:(fun _ rs -> Mechaml_ts.Automaton.state_name right rs = "locked_3")
            ()
        in
        (match early.Onthefly.verdict with
        | Onthefly.Bad_state _ -> ()
        | _ -> Alcotest.fail "locked_3 is reachable");
        check_bool "explored strictly less" true
          (early.Onthefly.pairs_explored < full.Onthefly.pairs_explored));
    test "invariant shape is validated" (fun () ->
        (match
           Onthefly.violates_invariant ~left:Railcab.context ~right:Railcab.legacy_correct
             ~invariant:(Ctl.Ef (None, Ctl.True)) ()
         with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "non-AG accepted");
        match
          Onthefly.violates_invariant ~left:Railcab.context ~right:Railcab.legacy_correct
            ~invariant:(Ctl.ag (Ctl.af Ctl.True)) ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "temporal body accepted");
    test "trace pairs form a joint path" (fun () ->
        let r =
          Onthefly.check_safety ~left:Mechaml_scenarios.Protocol.receiver
            ~right:Mechaml_scenarios.Protocol.sender_fire_and_forget ()
        in
        match r.Onthefly.verdict with
        | Onthefly.Deadlocked { pairs; io } ->
          check_int "one more pair than interactions" (List.length io + 1) (List.length pairs)
        | _ -> Alcotest.fail "expected Deadlocked");
  ]

let () = Alcotest.run "onthefly" [ ("unit", unit_tests) ]
